package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"metablocking/internal/core"
	"metablocking/internal/dataio"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
	"metablocking/internal/loadgen"
	"metablocking/internal/store"
)

// testProfiles returns n synthetic profiles, JSON-normalized exactly as the
// HTTP path normalizes them (marshal → parse groups attributes by sorted
// name), so serial replays see byte-identical profiles.
func testProfiles(t testing.TB, n int) []entity.Profile {
	t.Helper()
	ds := datagen.D1D(0.1)
	if len(ds.Collection.Profiles) < n {
		t.Fatalf("dataset has %d profiles, need %d", len(ds.Collection.Profiles), n)
	}
	out := make([]entity.Profile, n)
	for i := 0; i < n; i++ {
		raw, err := dataio.MarshalProfileJSON(ds.Collection.Profiles[i])
		if err != nil {
			t.Fatal(err)
		}
		p, err := dataio.ParseProfileJSON(raw)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func newTestServer(t testing.TB, cfg Config, opts ...Option) *Server {
	t.Helper()
	s, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestBatchedEqualsSerial is the acceptance load test: ≥8 concurrent
// clients drive ≥1k requests through the HTTP micro-batching path, and
// the responses must be identical — IDs, candidate sets, exact weights —
// to a serial one-at-a-time Resolver fed the same arrival order.
func TestBatchedEqualsSerial(t *testing.T) {
	cfg := Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		BatchWindow: time.Millisecond,
		MaxBatch:    32,
		QueueDepth:  4096, // never shed: every request participates
	}
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const requests = 1200
	profiles := testProfiles(t, requests)
	rep := loadgen.Run(loadgen.HTTPResolver(ts.URL, ts.Client()), profiles, loadgen.Options{
		Clients:  8,
		Requests: requests,
	})
	if len(rep.Errors) > 0 {
		t.Fatalf("%d hard errors, first: %v", len(rep.Errors), rep.Errors[0])
	}
	if rep.Rejected != 0 {
		t.Fatalf("%d requests shed with an oversized queue", rep.Rejected)
	}
	if len(rep.Responses) != requests {
		t.Fatalf("got %d responses, want %d", len(rep.Responses), requests)
	}

	// Recover the server's arrival order from the assigned IDs: they must
	// be dense 0..n-1.
	byID := make([]*loadgen.Response, requests)
	for i := range rep.Responses {
		r := &rep.Responses[i]
		if int(r.ID) < 0 || int(r.ID) >= requests || byID[r.ID] != nil {
			t.Fatalf("IDs not dense: response ID %d", r.ID)
		}
		byID[r.ID] = r
	}

	// Serial oracle: the same profiles, one Add at a time, in the arrival
	// order the server chose.
	serial, err := incremental.NewResolver(cfg.Resolver)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range byID {
		_, want := serial.Add(r.Profile)
		got := r.Candidates
		if len(got) != len(want) {
			t.Fatalf("arrival %d: %d candidates, serial wants %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Weight != want[i].Weight {
				t.Fatalf("arrival %d candidate %d: got (%d, %v), want (%d, %v)",
					id, i, got[i].ID, got[i].Weight, want[i].ID, want[i].Weight)
			}
		}
	}
	if got := s.Metrics().Counter(CtrAccepted).Value(); got != requests {
		t.Fatalf("accepted counter = %d, want %d", got, requests)
	}
	if batches := s.Metrics().Counter(CtrBatches).Value(); batches >= requests {
		t.Errorf("no batching happened: %d batches for %d requests", batches, requests)
	}
}

// TestQueueOverflowSheds stalls the single writer, overflows the bounded
// queue, and checks that surplus requests are shed with ErrQueueFull while
// every accepted request still gets its answer.
func TestQueueOverflowSheds(t *testing.T) {
	s := newTestServer(t, Config{
		Resolver:    incremental.Config{Scheme: core.CBS},
		MaxBatch:    1,
		QueueDepth:  2,
		BatchWindow: time.Millisecond,
	})
	profiles := testProfiles(t, 1)

	s.mu.Lock() // stall the batcher's flush
	const attempts = 20
	type outcome struct {
		res Resolution
		err error
	}
	results := make(chan outcome, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Resolve(context.Background(), profiles[0])
			results <- outcome{res, err}
		}()
	}
	// Wait until all attempts have either been accepted or shed: accepted
	// ones are blocked on their reply, shed ones already counted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		acc := s.metrics.Counter(CtrAccepted).Value()
		rej := s.metrics.Counter(CtrRejectedFull).Value()
		if acc+rej == attempts {
			break
		}
		if time.Now().After(deadline) {
			s.mu.Unlock()
			t.Fatalf("admission stuck: accepted %d + rejected %d != %d", acc, rej, attempts)
		}
		time.Sleep(time.Millisecond)
	}
	accepted := int(s.metrics.Counter(CtrAccepted).Value())
	rejected := int(s.metrics.Counter(CtrRejectedFull).Value())
	if rejected == 0 {
		t.Fatal("queue of 2 never overflowed under 20 concurrent submits")
	}
	if accepted == 0 {
		t.Fatal("no request was accepted")
	}
	s.mu.Unlock()
	wg.Wait()
	close(results)

	gotResults, gotShed := 0, 0
	for o := range results {
		switch {
		case errors.Is(o.err, ErrQueueFull):
			gotShed++
		case o.err != nil:
			t.Fatalf("unexpected error: %v", o.err)
		default:
			gotResults++
		}
	}
	if gotResults != accepted || gotShed != rejected {
		t.Fatalf("answers %d/%d, shed %d/%d: accepted requests were dropped",
			gotResults, accepted, gotShed, rejected)
	}
}

// TestHTTPQueueOverflow429 checks the HTTP mapping of backpressure: 429
// with a Retry-After header, and eventual success for accepted posts.
func TestHTTPQueueOverflow429(t *testing.T) {
	s := newTestServer(t, Config{
		Resolver:    incremental.Config{Scheme: core.CBS},
		MaxBatch:    1,
		QueueDepth:  1,
		BatchWindow: time.Millisecond,
		RetryAfter:  3 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.mu.Lock()
	type post struct {
		status     int
		retryAfter string
	}
	const attempts = 10
	results := make(chan post, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/resolve", "application/json",
				bytes.NewReader([]byte(`{"attributes":{"name":["jack miller"]}}`)))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- post{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	// At least one shed response arrives while the writer is stalled.
	select {
	case p := <-results:
		if p.status != http.StatusTooManyRequests {
			t.Fatalf("first completed status = %d, want 429", p.status)
		}
		if p.retryAfter != "3" {
			t.Fatalf("Retry-After = %q, want \"3\"", p.retryAfter)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no response while writer stalled")
	}
	s.mu.Unlock()
	wg.Wait()
	close(results)
	for p := range results {
		if p.status != http.StatusOK && p.status != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 200 or 429", p.status)
		}
	}
}

// TestReloadZeroFailures hot-swaps snapshots while 8 clients hammer
// /v1/resolve; no request may fail with anything but backpressure.
func TestReloadZeroFailures(t *testing.T) {
	resolverCfg := incremental.Config{Scheme: core.JS, K: 10}
	profiles := testProfiles(t, 500)

	// Pre-block a 100-profile snapshot on disk.
	pre, err := incremental.NewResolver(resolverCfg)
	if err != nil {
		t.Fatal(err)
	}
	pre.AddBatch(profiles[:100])
	snapPath := filepath.Join(t.TempDir(), "resolver.snap")
	if err := store.SaveResolverFile(snapPath, pre.Snapshot()); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{
		Resolver:    resolverCfg,
		BatchWindow: time.Millisecond,
		MaxBatch:    16,
		QueueDepth:  4096,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reload := func() ReloadResponse {
		body, _ := json.Marshal(ReloadRequest{Path: snapPath})
		resp, err := ts.Client().Post(ts.URL+"/v1/admin/reload", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload status %d: %s", resp.StatusCode, payload)
		}
		var rr ReloadResponse
		if err := json.Unmarshal(payload, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}

	done := make(chan *loadgen.Report)
	go func() {
		done <- loadgen.Run(loadgen.HTTPResolver(ts.URL, ts.Client()), profiles[100:], loadgen.Options{
			Clients:  8,
			Requests: 400,
		})
	}()
	const reloads = 5
	for i := 0; i < reloads; i++ {
		if rr := reload(); rr.Profiles != 100 {
			t.Fatalf("reload %d loaded %d profiles, want 100", i, rr.Profiles)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rep := <-done
	if len(rep.Errors) > 0 {
		t.Fatalf("reload failed %d in-flight requests, first: %v", len(rep.Errors), rep.Errors[0])
	}
	if rep.Rejected != 0 {
		t.Fatalf("%d requests shed with an oversized queue", rep.Rejected)
	}
	if len(rep.Responses) != 400 {
		t.Fatalf("%d responses, want 400", len(rep.Responses))
	}
	// Every response resolved against a swapped-in snapshot carries an ID
	// at or past the snapshot size; pre-swap IDs start at 0. Both are
	// legitimate — what matters is that all succeeded.
	if got := s.Metrics().Counter(CtrReloads).Value(); got != reloads {
		t.Fatalf("reload counter = %d, want %d", got, reloads)
	}
	if size := s.Size(); size < 100 {
		t.Fatalf("size after final reload = %d, want ≥ 100", size)
	}
}

// TestGracefulCloseDrains verifies that Close answers every accepted
// request and rejects new ones with ErrDraining.
func TestGracefulCloseDrains(t *testing.T) {
	s := newTestServer(t, Config{
		Resolver:    incremental.Config{Scheme: core.CBS},
		BatchWindow: 50 * time.Millisecond, // long window: Close must cut it short
		MaxBatch:    8,
		QueueDepth:  64,
	})
	profiles := testProfiles(t, 5)

	type outcome struct {
		res Resolution
		err error
	}
	results := make(chan outcome, len(profiles))
	for i := range profiles {
		go func(p entity.Profile) {
			res, err := s.Resolve(context.Background(), p)
			results <- outcome{res, err}
		}(profiles[i])
	}
	// Wait for all five to be admitted, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Counter(CtrAccepted).Value() < int64(len(profiles)) {
		if time.Now().After(deadline) {
			t.Fatal("submissions not admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[entity.ID]bool)
	for range profiles {
		o := <-results
		if o.err != nil {
			t.Fatalf("accepted request failed during drain: %v", o.err)
		}
		if seen[o.res.ID] {
			t.Fatalf("duplicate ID %d", o.res.ID)
		}
		seen[o.res.ID] = true
	}
	if s.Ready() {
		t.Fatal("Ready after Close")
	}
	if _, err := s.Resolve(context.Background(), profiles[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close Resolve error = %v, want ErrDraining", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestResolveContextCanceled: an accepted request whose client gives up is
// still processed; only the reply is dropped.
func TestResolveContextCanceled(t *testing.T) {
	s := newTestServer(t, Config{
		Resolver:    incremental.Config{Scheme: core.CBS},
		MaxBatch:    1,
		QueueDepth:  4,
		BatchWindow: time.Millisecond,
	})
	profiles := testProfiles(t, 1)

	s.mu.Lock()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := s.Resolve(ctx, profiles[0])
		errc <- err
	}()
	if err := <-errc; !errors.Is(err, context.DeadlineExceeded) {
		s.mu.Unlock()
		t.Fatalf("error = %v, want DeadlineExceeded", err)
	}
	s.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for s.Size() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned request never processed, size = %d", s.Size())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEndpoints covers the operational surface: health, readiness,
// metrics, expvar, and the error mappings of resolve and reload.
func TestEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Resolver: incremental.Config{Scheme: core.JS}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(path, body string) (int, string) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(payload)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("readyz = %d %q", code, body)
	}
	if code, body := post("/v1/resolve", `{"attributes":{"name":["jack miller"]}}`); code != 200 {
		t.Fatalf("resolve = %d %s", code, body)
	}
	// Every non-2xx answer carries the structured envelope with a stable
	// machine-readable code.
	errCode := func(body string) string {
		var e ErrorResponse
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Code == "" {
			t.Fatalf("non-2xx body is not an error envelope: %s", body)
		}
		if e.Error.Message == "" {
			t.Fatalf("envelope without message: %s", body)
		}
		return e.Error.Code
	}
	if code, body := post("/v1/resolve", "not json"); code != 422 || errCode(body) != CodeInvalidProfile {
		t.Fatalf("garbage resolve = %d %s", code, body)
	}
	if code, body := post("/v1/admin/reload", `{}`); code != 400 || errCode(body) != CodeInvalidRequest {
		t.Fatalf("reload without path = %d %s", code, body)
	}
	if code, body := post("/v1/admin/reload", `{"path":"/nonexistent/snap"}`); code != 404 || errCode(body) != CodeNotFound {
		t.Fatalf("reload missing file = %d %s", code, body)
	}
	// A snapshot with a different scheme is refused with a stable code.
	other, err := incremental.NewResolver(incremental.Config{Scheme: core.CBS})
	if err != nil {
		t.Fatal(err)
	}
	otherPath := filepath.Join(t.TempDir(), "other.snap")
	if err := store.SaveResolverFile(otherPath, other.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if code, body := post("/v1/admin/reload", fmt.Sprintf(`{"path":%q}`, otherPath)); code != 422 || errCode(body) != CodeSchemeMismatch {
		t.Fatalf("cross-scheme reload = %d %s", code, body)
	}

	// The admin status endpoint reports the effective (post-defaults)
	// config and breaker state.
	stCode, stBody := get("/v1/admin/status")
	if stCode != 200 {
		t.Fatalf("status = %d %s", stCode, stBody)
	}
	var st Status
	if err := json.Unmarshal([]byte(stBody), &st); err != nil {
		t.Fatalf("status not JSON: %v", err)
	}
	if st.Config.Scheme != "JS" || st.Config.Shards != 1 || st.Config.MaxBatch != 64 ||
		st.Config.MaxBlockSize != 1000 || st.Profiles != 1 || !st.Ready || st.Breaker != "closed" {
		t.Fatalf("status = %+v", st)
	}

	if code, body := get("/metrics"); code != 200 ||
		!bytes.Contains([]byte(body), []byte("server.accepted")) ||
		!bytes.Contains([]byte(body), []byte("http.resolve.requests")) {
		t.Fatalf("metrics = %d %q", code, body)
	}
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("debug/vars = %d", code)
	}
	var snap struct {
		Counters map[string]int64
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("debug/vars not JSON: %v", err)
	}
	if snap.Counters["server.accepted"] != 1 {
		t.Fatalf("expvar accepted = %d, want 1", snap.Counters["server.accepted"])
	}

	s.Close()
	if code, _ := get("/readyz"); code != 503 {
		t.Fatalf("readyz after Close = %d, want 503", code)
	}
	if code, _ := post("/v1/resolve", `{"attributes":{"a":["b"]}}`); code != 503 {
		t.Fatalf("resolve after Close = %d, want 503", code)
	}
}

// TestSnapshotOfServingIndex: Server.Snapshot round-trips through the
// store and reloads into an identical index.
func TestSnapshotOfServingIndex(t *testing.T) {
	s := newTestServer(t, Config{Resolver: incremental.Config{Scheme: core.JS, K: 5}})
	profiles := testProfiles(t, 20)
	for _, p := range profiles {
		if _, err := s.Resolve(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "serving.snap")
	if err := store.SaveResolverFile(path, s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	n, err := s.ReloadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 || s.Size() != 20 {
		t.Fatalf("reloaded size = %d / %d, want 20", n, s.Size())
	}
}

// TestSnapshotEndpoint drives the persist→reload loop entirely over HTTP:
// /v1/admin/snapshot writes the serving index to disk, /v1/admin/reload
// swaps it back in.
func TestSnapshotEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Resolver: incremental.Config{Scheme: core.JS, K: 5}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (int, string) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(payload)
	}

	for _, p := range testProfiles(t, 12) {
		if _, err := s.Resolve(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}

	if code, body := post("/v1/admin/snapshot", `{}`); code != 400 {
		t.Fatalf("snapshot without path = %d %s", code, body)
	}
	if code, body := post("/v1/admin/snapshot", `{"path":"/nonexistent-dir/x.snap"}`); code != 500 {
		t.Fatalf("snapshot to unwritable path = %d %s", code, body)
	}

	path := filepath.Join(t.TempDir(), "via-http.snap")
	code, body := post("/v1/admin/snapshot", fmt.Sprintf(`{"path":%q}`, path))
	if code != 200 {
		t.Fatalf("snapshot = %d %s", code, body)
	}
	var sr SnapshotResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatalf("snapshot response not JSON: %v", err)
	}
	if sr.Profiles != 12 || sr.Path != path {
		t.Fatalf("snapshot response = %+v, want 12 profiles at %s", sr, path)
	}

	code, body = post("/v1/admin/reload", fmt.Sprintf(`{"path":%q}`, path))
	if code != 200 {
		t.Fatalf("reload of own snapshot = %d %s", code, body)
	}
	if s.Size() != 12 {
		t.Fatalf("size after reload = %d, want 12", s.Size())
	}
	if got := s.Metrics().Snapshot().Counters[CtrSnapshots]; got != 1 {
		t.Fatalf("%s counter = %d, want 1", CtrSnapshots, got)
	}
}
