package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar name against the
// duplicate-Publish panic when several servers share one registry.
var publishOnce sync.Once

// ServeDebug serves live observability for the registry on addr:
//
//   - /debug/vars   — expvar JSON (cmdline, memstats, and the registry
//     under the "metablocking" key)
//   - /debug/pprof/ — net/http/pprof profiles (heap, goroutine, CPU, …)
//   - /metrics      — the registry as a plain-text counter table
//
// The listener is bound synchronously (so the returned address is ready)
// and served in a background goroutine. Close the returned server to stop
// it. A nil registry serves only expvar and pprof.
func ServeDebug(addr string, m *Metrics) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if m != nil {
		publishOnce.Do(func() {
			expvar.Publish("metablocking", expvar.Func(func() any { return m.Snapshot() }))
		})
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, m.Snapshot().Table())
	})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}
