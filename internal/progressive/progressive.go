// Package progressive implements pay-as-you-go Entity Resolution on top of
// the blocking graph: comparisons are emitted in descending edge-weight
// order so that, under any comparison budget, the executed prefix contains
// the likeliest matches. The paper motivates exactly this application
// class ("Pay-as-you-go ER", §3) for its efficiency-intensive
// configurations; this package turns the weighted graph into the
// prioritized comparison stream such applications consume.
package progressive

import (
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// Comparison is one prioritized comparison.
type Comparison struct {
	Pair   entity.Pair
	Weight float64
}

// Scheduler materializes the weighted comparisons of a block collection
// and serves them heaviest-first. Emission is driven by an incremental
// Frontier instead of a full pre-sort: building the schedule heapifies in
// O(n), and a consumer that stops after k comparisons — the whole point of
// pay-as-you-go ER — pays O(k log n) instead of sorting everything it will
// never execute. The emitted order is identical to the former pre-sort.
type Scheduler struct {
	frontier *Frontier
	emitted  []Comparison
}

// NewScheduler builds the schedule: one optimized traversal collects every
// distinct comparison with its weight, then a single O(n) heapify fixes
// the emission order (ties break on the canonical pair, so schedules are
// deterministic).
func NewScheduler(c *block.Collection, scheme core.Scheme) *Scheduler {
	g := core.NewGraph(c, scheme)
	var cs []Comparison
	g.ForEachEdge(func(i, j entity.ID, w float64) {
		cs = append(cs, Comparison{Pair: entity.MakePair(i, j), Weight: w})
	})
	return &Scheduler{frontier: NewFrontier(cs)}
}

// Len returns the total number of scheduled comparisons.
func (s *Scheduler) Len() int { return len(s.emitted) + s.frontier.Len() }

// Remaining returns how many comparisons have not been emitted yet.
func (s *Scheduler) Remaining() int { return s.frontier.Len() }

// Frontier returns the weight of the next comparison to be emitted, or
// ok=false when exhausted — the resumption point a budgeted consumer
// records when its budget runs out.
func (s *Scheduler) Frontier() (float64, bool) {
	c, ok := s.frontier.Peek()
	return c.Weight, ok
}

// Next returns the next-heaviest comparison, or ok=false when exhausted.
func (s *Scheduler) Next() (Comparison, bool) {
	c, ok := s.frontier.Next()
	if ok {
		s.emitted = append(s.emitted, c)
	}
	return c, ok
}

// Take emits up to n comparisons (the next budget slice). The returned
// slice stays valid across further Takes; Reset stops maintaining it.
func (s *Scheduler) Take(n int) []Comparison {
	start := len(s.emitted)
	for i := 0; i < n; i++ {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	return s.emitted[start:len(s.emitted):len(s.emitted)]
}

// Reset rewinds the schedule to the beginning, re-heapifying the emitted
// prefix together with whatever remains.
func (s *Scheduler) Reset() {
	all := make([]Comparison, 0, s.Len())
	all = append(all, s.emitted...)
	all = append(all, s.frontier.heap...)
	s.frontier = NewFrontier(all)
	s.emitted = nil
}

// RecallCurvePoint is one point of a progressive-recall curve.
type RecallCurvePoint struct {
	Comparisons int
	Recall      float64
}

// RecallCurve executes the schedule against the ground truth and samples
// recall at the given comparison budgets (ascending). It is the evaluation
// used to compare progressive methods: a good schedule reaches high recall
// within a small budget prefix.
func RecallCurve(s *Scheduler, gt *entity.GroundTruth, budgets []int) []RecallCurvePoint {
	s.Reset()
	sorted := append([]int(nil), budgets...)
	sort.Ints(sorted)
	var out []RecallCurvePoint
	detected, executed := 0, 0
	for _, budget := range sorted {
		for executed < budget {
			c, ok := s.Next()
			if !ok {
				break
			}
			executed++
			if gt.Contains(c.Pair.A, c.Pair.B) {
				detected++
			}
		}
		out = append(out, RecallCurvePoint{
			Comparisons: executed,
			Recall:      float64(detected) / float64(gt.Size()),
		})
	}
	return out
}
