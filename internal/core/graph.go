package core

import (
	"sync"

	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/floatsum"
	"metablocking/internal/obs"
	"metablocking/internal/par"
)

// Graph is the implicit blocking graph GB of a block collection (paper §3).
// It is never materialized: nodes are the profiles appearing in blocks and
// edges are the non-redundant comparisons, traversed on demand through the
// Entity Index. A Graph is bound to one weighting scheme.
//
// A Graph holds reusable scratch arrays and is therefore NOT safe for
// concurrent use; create one Graph per goroutine.
type Graph struct {
	// OriginalWeighting switches every traversal from Optimized Edge
	// Weighting (Alg. 3, the default) to the Original one (Alg. 2), for
	// the efficiency comparison of Table 5.
	OriginalWeighting bool

	blocks *block.Collection
	index  *block.EntityIndex
	ctx    weightContext

	// invCard caches 1/‖b‖ per block for ARCS.
	invCard []float64
	// degrees caches |vi| (distinct neighbors per node) for EJS.
	degrees []int32

	// sc is this graph's private traversal scratch; shards get their own.
	sc *scanScratch
	// scratchPool recycles shard scratch across parallel passes — a
	// multi-pass algorithm (WEP, Redefined WNP) reuses the same per-worker
	// cell arrays instead of reallocating |E| cells every pass.
	scratchPool *sync.Pool

	// obs carries the run's observability handle (cancellation polls and
	// the edges-weighted counter); meter is the current stage's progress
	// meter. Both are nil on un-observed graphs and shared across shards.
	obs   *obs.Observer
	meter *obs.Meter
}

// scanCell is one entity's ScanCount accumulator slot: the epoch of the
// last scan that touched it and the accumulated co-occurrence statistic.
// Interleaving the two (instead of parallel []int64/[]float64 arrays) makes
// each random access in the hot accumulate loop touch one cache line, not
// two.
type scanCell struct {
	epoch  int64
	common float64
}

// scanScratch is the reusable per-traversal state of one Graph (or one
// shard). Cells are epoch-stamped, so clearing between scans is O(1): a
// cell is valid only when its epoch matches the scratch's current epoch.
// The epoch counter travels with the scratch through the pool, keeping
// stamps monotonic across reuse.
type scanScratch struct {
	cells     []scanCell
	epoch     int64
	neighbors []entity.ID
	weights   []float64
	meanAcc   floatsum.Acc
	// blist/blistB are decode buffers for the compressed Entity Index;
	// unused (nil) while the index serves flat views.
	blist  []int32
	blistB []int32
}

// obsTick batches progress ticks and cancellation polls for the hot
// traversal loops: step is called once per outer-loop iteration, ticks the
// meter every obs.Stride iterations and reports whether the traversal
// should abort. flush reports the iterations since the last full stride.
type obsTick struct {
	o *obs.Observer
	m *obs.Meter
	n int64
}

func (t *obsTick) step() bool {
	t.n++
	if t.n&obs.StrideMask != 0 {
		return false
	}
	t.m.Add(obs.Stride)
	return t.o.Canceled()
}

func (t *obsTick) flush() { t.m.Add(t.n & obs.StrideMask) }

// SetMeter installs the progress meter ticked by the traversal loops.
func (g *Graph) SetMeter(m *obs.Meter) { g.meter = m }

// NewGraph builds the implicit blocking graph for the given (redundancy-
// positive) block collection and weighting scheme on a single core.
// Construction builds the Entity Index and, for EJS, one extra pass to
// compute node degrees.
func NewGraph(c *block.Collection, scheme Scheme) *Graph {
	return NewGraphWorkers(c, scheme, 1)
}

// NewGraphWorkers builds the same graph with the given number of workers
// (0 or 1 = serial, negative = GOMAXPROCS): the Entity Index count and
// fill passes and the EJS degree pass are sharded across the workers. The
// resulting graph is bit-identical to the serial build.
func NewGraphWorkers(c *block.Collection, scheme Scheme, workers int) *Graph {
	return NewGraphObserved(c, scheme, workers, nil)
}

// NewGraphObserved is NewGraphWorkers with an observability handle: the
// resolved worker count is reported to the workers.graph gauge, the EJS
// degree pass reports graph-stage progress, and construction aborts
// between (and, for the sharded passes, inside) its passes once o's
// context is canceled — callers must check o.Err before using the graph.
func NewGraphObserved(c *block.Collection, scheme Scheme, workers int, o *obs.Observer) *Graph {
	workers = par.Resolve(workers, c.NumEntities)
	o.Gauge(obs.GaugeWorkersGraph).Set(int64(workers))
	g := &Graph{
		blocks:      c,
		index:       block.NewEntityIndexObserved(c, workers, o),
		obs:         o,
		sc:          &scanScratch{cells: make([]scanCell, c.NumEntities)},
		scratchPool: &sync.Pool{},
	}
	if o.Canceled() {
		return g
	}
	if scheme.usesReciprocalCardinality() {
		g.invCard = make([]float64, len(c.Blocks))
		for i := range c.Blocks {
			if n := c.Blocks[i].Comparisons(); n > 0 {
				g.invCard[i] = 1 / float64(n)
			}
		}
	}
	numNodes := 0
	for id := 0; id < c.NumEntities; id++ {
		if g.index.NumBlocks(entity.ID(id)) > 0 {
			numNodes++
		}
	}
	g.ctx = weightContext{scheme: scheme, numBlocks: float64(len(c.Blocks)), numNodes: float64(numNodes)}
	if scheme.NeedsDegrees() && !o.Canceled() {
		g.meter = o.NewMeter(obs.StageGraph, int64(c.NumEntities))
		g.computeDegrees(workers)
		g.meter = nil
	}
	return g
}

// CompressIndex converts the graph's Entity Index to delta+varint posting
// lists (with a dense-bitmap fallback per list). Traversals then decode
// block lists into per-shard scratch; every weight, threshold and pruned
// set is bit-identical to the flat path — the decoded lists are the same
// []int32 values. Call it once, before any traversal; it is not safe
// concurrently with them.
func (g *Graph) CompressIndex() { g.index.Compress() }

// blockList returns entity i's ascending block IDs: a zero-copy view on the
// flat index, a decode into this graph's scratch on the compressed one.
// Valid until the next blockList/blockLists call on the same graph.
func (g *Graph) blockList(i entity.ID) []int32 {
	if !g.index.Compressed() {
		return g.index.BlockList(i)
	}
	g.sc.blist = g.index.AppendBlockList(g.sc.blist[:0], i)
	return g.sc.blist
}

// blockLists returns the block lists of both entities for a pairwise
// intersection, using the two decode buffers in compressed mode.
func (g *Graph) blockLists(a, b entity.ID) ([]int32, []int32) {
	if !g.index.Compressed() {
		return g.index.BlockList(a), g.index.BlockList(b)
	}
	sc := g.sc
	sc.blist = g.index.AppendBlockList(sc.blist[:0], a)
	sc.blistB = g.index.AppendBlockList(sc.blistB[:0], b)
	return sc.blist, sc.blistB
}

// Blocks returns the underlying block collection.
func (g *Graph) Blocks() *block.Collection { return g.blocks }

// Index returns the underlying Entity Index.
func (g *Graph) Index() *block.EntityIndex { return g.index }

// Scheme returns the weighting scheme the graph was built with.
func (g *Graph) Scheme() Scheme { return g.ctx.scheme }

// NumNodes returns |VB|, the graph order (profiles placed in ≥1 block).
func (g *Graph) NumNodes() int { return int(g.ctx.numNodes) }

// NumEdges returns |EB|, the graph size (distinct comparisons). It requires
// a full traversal and is intended for reporting, not hot paths.
func (g *Graph) NumEdges() int64 {
	var n int64
	g.ForEachNode(func(_ entity.ID, neighbors []entity.ID, _ []float64) {
		n += int64(len(neighbors))
	})
	return n / 2 // every edge is seen from both endpoints
}

// scanNeighborhood runs the core of Algorithm 3 (lines 6-12) for node i:
// it enumerates the distinct co-occurring profiles and accumulates, per
// neighbor, the number of shared blocks (or Σ 1/‖b‖ for ARCS). The
// returned slices are scratch, valid until the next scan.
func (g *Graph) scanNeighborhood(i entity.ID) []entity.ID {
	sc := g.sc
	sc.neighbors = sc.neighbors[:0]
	sc.epoch++
	clean := g.blocks.Task == entity.CleanClean
	iFirst := g.blocks.InFirst(i)
	for _, bid := range g.blockList(i) {
		b := &g.blocks.Blocks[bid]
		inc := 1.0
		if g.invCard != nil {
			inc = g.invCard[bid]
		}
		if clean {
			// Edges only cross the two source collections.
			if iFirst {
				g.accumulate(i, b.E2, inc, false)
			} else {
				g.accumulate(i, b.E1, inc, false)
			}
		} else {
			g.accumulate(i, b.E1, inc, true)
		}
	}
	return sc.neighbors
}

// accumulate records co-occurrences of i with the given profiles. When
// skipSelf is set, the profile i itself is skipped (Dirty ER blocks list
// every member on one side).
func (g *Graph) accumulate(i entity.ID, others []entity.ID, inc float64, skipSelf bool) {
	sc := g.sc
	epoch := sc.epoch
	cells := sc.cells
	for _, j := range others {
		if skipSelf && j == i {
			continue
		}
		c := &cells[j]
		if c.epoch != epoch {
			c.epoch = epoch
			c.common = inc
			sc.neighbors = append(sc.neighbors, j)
		} else {
			c.common += inc
		}
	}
}

// computeDegrees fills g.degrees with |vi| — the number of distinct
// neighbors of every node — via ScanCount passes sharded over disjoint
// node ranges (each worker owns a private scratch shard, and the ranges
// write disjoint g.degrees indices).
func (g *Graph) computeDegrees(workers int) {
	g.degrees = make([]int32, g.blocks.NumEntities)
	g.parallelRanges(workers, func(w *Graph, _, lo, hi int) {
		tick := obsTick{o: w.obs, m: w.meter}
		for id := lo; id < hi; id++ {
			if tick.step() {
				break
			}
			i := entity.ID(id)
			if w.index.NumBlocks(i) == 0 {
				continue
			}
			g.degrees[i] = int32(len(w.scanNeighborhood(i)))
		}
		tick.flush()
	})
}

// weightOf computes the edge weight between i and a neighbor j whose
// accumulator has just been filled by scanNeighborhood(i).
func (g *Graph) weightOf(i, j entity.ID) float64 {
	var di, dj int32
	if g.degrees != nil {
		di, dj = g.degrees[i], g.degrees[j]
	}
	return g.ctx.weight(g.sc.cells[j].common, g.index.NumBlocks(i), g.index.NumBlocks(j), di, dj)
}

// fillWeights computes the weights of i's freshly scanned neighbors into
// the scratch weights buffer, hoisting the per-i operands (|Bi|, degree)
// out of the inner loop.
func (g *Graph) fillWeights(i entity.ID, neighbors []entity.ID) []float64 {
	sc := g.sc
	w := sc.weights[:0]
	bi := g.index.NumBlocks(i)
	cells := sc.cells
	if g.degrees == nil {
		for _, j := range neighbors {
			w = append(w, g.ctx.weight(cells[j].common, bi, g.index.NumBlocks(j), 0, 0))
		}
	} else {
		di := g.degrees[i]
		for _, j := range neighbors {
			w = append(w, g.ctx.weight(cells[j].common, bi, g.index.NumBlocks(j), di, g.degrees[j]))
		}
	}
	sc.weights = w
	return w
}

// ForEachNode invokes fn once per node that has at least one incident
// edge, passing the distinct neighbors and their edge weights (Optimized
// Edge Weighting, Alg. 3). The slices passed to fn are scratch buffers,
// only valid for the duration of the call.
func (g *Graph) ForEachNode(fn func(i entity.ID, neighbors []entity.ID, weights []float64)) {
	g.forEachNodeRange(0, g.blocks.NumEntities, fn)
}

// ForEachEdge invokes fn once per edge of the blocking graph with its
// weight, using the optimized per-node scan and emitting each pair from its
// smaller endpoint only.
func (g *Graph) ForEachEdge(fn func(i, j entity.ID, w float64)) {
	g.forEachEdgeRange(0, g.blocks.NumEntities, fn)
}
