package block

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"metablocking/internal/entity"
)

// randomBlocks builds a random Dirty-ER collection for equivalence tests.
func randomBlocks(rng *rand.Rand, numEntities, numBlocks int) *Collection {
	c := &Collection{Task: entity.Dirty, NumEntities: numEntities, Split: numEntities}
	for b := 0; b < numBlocks; b++ {
		size := 2 + rng.Intn(6)
		seen := make(map[entity.ID]struct{}, size)
		var members []entity.ID
		for len(members) < size {
			id := entity.ID(rng.Intn(numEntities))
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			members = append(members, id)
		}
		sortIDs(members)
		c.Blocks = append(c.Blocks, Block{Key: blockKey(b), E1: members})
	}
	return c
}

func sortIDs(ids []entity.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func blockKey(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

// TestEntityIndexParallelMatchesSerial: for every worker count, the
// parallel Entity Index must return exactly the serial block lists.
func TestEntityIndexParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomBlocks(rng, 120, 300)
	want := NewEntityIndex(c)
	for _, w := range []int{2, 3, 7, runtime.GOMAXPROCS(0), -1, 1000} {
		got := NewEntityIndexParallel(c, w)
		if got.NumEntities() != want.NumEntities() {
			t.Fatalf("workers=%d: NumEntities %d ≠ %d", w, got.NumEntities(), want.NumEntities())
		}
		for id := 0; id < c.NumEntities; id++ {
			g, s := got.BlockList(entity.ID(id)), want.BlockList(entity.ID(id))
			if !reflect.DeepEqual(g, s) {
				t.Fatalf("workers=%d entity %d: block list %v ≠ %v", w, id, g, s)
			}
		}
	}
}

// TestEntityIndexParallelEmpty: zero blocks and zero entities must not
// panic at any worker count.
func TestEntityIndexParallelEmpty(t *testing.T) {
	c := &Collection{Task: entity.Dirty}
	for _, w := range []int{1, 4, -1} {
		idx := NewEntityIndexParallel(c, w)
		if idx.NumEntities() != 0 {
			t.Fatalf("workers=%d: expected empty index", w)
		}
	}
}

// TestSortByCardinalityWorkersMatchesSerial: the parallel merge sort must
// produce the exact serial order for every worker count.
func TestSortByCardinalityWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomBlocks(rng, 150, 400)
	want := base.Clone()
	want.SortByCardinality()
	for _, w := range []int{2, 3, 7, runtime.GOMAXPROCS(0), -1, 1000} {
		got := base.Clone()
		got.SortByCardinalityWorkers(w)
		if !reflect.DeepEqual(got.Blocks, want.Blocks) {
			t.Fatalf("workers=%d: parallel sort differs from serial", w)
		}
	}
}

// TestSortByCardinalityWorkersSmall: collections smaller than the worker
// count exercise the clamping path.
func TestSortByCardinalityWorkersSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		rng := rand.New(rand.NewSource(int64(n)))
		base := randomBlocks(rng, 20, n)
		want := base.Clone()
		want.SortByCardinality()
		got := base.Clone()
		got.SortByCardinalityWorkers(8)
		if !reflect.DeepEqual(got.Blocks, want.Blocks) {
			t.Fatalf("n=%d: parallel sort differs from serial", n)
		}
	}
}

// TestCloneWorkersDeepCopies: the parallel clone must equal the input and
// own its member slices.
func TestCloneWorkersDeepCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randomBlocks(rng, 80, 120)
	for _, w := range []int{1, 4, -1} {
		clone := base.CloneWorkers(w)
		if !reflect.DeepEqual(clone.Blocks, base.Blocks) {
			t.Fatalf("workers=%d: clone differs from original", w)
		}
		orig := base.Blocks[0].E1[0]
		clone.Blocks[0].E1[0] = orig + 1
		if base.Blocks[0].E1[0] != orig {
			t.Fatalf("workers=%d: clone shares member storage with original", w)
		}
	}
}
