// Package postings provides compressed posting lists — the cache- and
// GC-friendly representation of the ascending ID lists meta-blocking
// traverses everywhere: an entity's block list in the Entity Index, a
// block's member list in the incremental resolver.
//
// Two encodings are used, chosen per list by encoded size:
//
//   - delta+varint: each element is stored as the unsigned LEB128 varint of
//     its difference from the predecessor. Sparse lists (the common case)
//     cost one or two bytes per element instead of four.
//   - dense bitmap: a first-element anchor plus one bit per value in the
//     list's span. High-frequency entities whose lists cover most block IDs
//     compress below one bit per element and decode by word scans.
//
// All lists decode into caller-provided scratch (decode-into-scratch API),
// so steady-state traversals allocate nothing. The package also provides
// the galloping (exponential-search) intersection primitives shared by the
// flat and compressed index paths.
package postings

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Form identifies a list's encoding.
type Form byte

const (
	// Varint is the delta+varint encoding (sparse lists).
	Varint Form = 0
	// Bitmap is the dense-bitmap encoding (high-frequency lists).
	Bitmap Form = 1
)

// sizeVarint returns the encoded size of the delta+varint form without
// materializing it.
func sizeVarint(ids []int32) int {
	size, prev := 0, int32(0)
	for _, id := range ids {
		d := uint32(id - prev)
		size += (bits.Len32(d|1) + 6) / 7
		prev = id
	}
	return size
}

// sizeBitmap returns the encoded size of the bitmap form: a 4-byte anchor
// plus one 8-byte word per 64 values of span.
func sizeBitmap(ids []int32) int {
	if len(ids) == 0 {
		return 0
	}
	span := uint64(ids[len(ids)-1]-ids[0]) + 1
	return 4 + 8*int((span+63)/64)
}

// appendVarint appends the delta+varint encoding of ids to dst.
func appendVarint(dst []byte, ids []int32) []byte {
	prev := int32(0)
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(id-prev)))
		prev = id
	}
	return dst
}

// appendBitmap appends the bitmap encoding of ids to dst: the first element
// as a little-endian uint32 anchor, then span bits in 64-bit words.
func appendBitmap(dst []byte, ids []int32) []byte {
	first := ids[0]
	dst = binary.LittleEndian.AppendUint32(dst, uint32(first))
	span := int(ids[len(ids)-1]-first) + 1
	words := (span + 63) / 64
	at := len(dst)
	for i := 0; i < words; i++ {
		dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	}
	for _, id := range ids {
		bit := uint(id - first)
		idx := at + 8*int(bit/64)
		w := binary.LittleEndian.Uint64(dst[idx:])
		binary.LittleEndian.PutUint64(dst[idx:], w|1<<(bit%64))
	}
	return dst
}

// Append encodes ids (ascending, possibly empty) choosing the smaller of
// the two forms, appends the encoding to dst and returns the grown buffer
// and the chosen form.
func Append(dst []byte, ids []int32) ([]byte, Form) {
	if len(ids) == 0 {
		return dst, Varint
	}
	if sizeBitmap(ids) < sizeVarint(ids) {
		return appendBitmap(dst, ids), Bitmap
	}
	return appendVarint(dst, ids), Varint
}

// decodeVarint appends the n values of a delta+varint encoding to dst.
func decodeVarint(dst []int32, enc []byte, n int) []int32 {
	prev := uint32(0)
	for i := 0; i < n; i++ {
		v, k := binary.Uvarint(enc)
		enc = enc[k:]
		prev += uint32(v)
		dst = append(dst, int32(prev))
	}
	return dst
}

// decodeBitmap appends a bitmap encoding's values to dst.
func decodeBitmap(dst []int32, enc []byte) []int32 {
	first := int32(binary.LittleEndian.Uint32(enc))
	enc = enc[4:]
	for wi := 0; len(enc) >= 8; wi++ {
		w := binary.LittleEndian.Uint64(enc)
		enc = enc[8:]
		base := first + int32(64*wi)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// AppendDecoded appends the values of one encoded list to dst.
func AppendDecoded(dst []int32, form Form, enc []byte, n int) []int32 {
	if n == 0 {
		return dst
	}
	if form == Bitmap {
		return decodeBitmap(dst, enc)
	}
	return decodeVarint(dst, enc, n)
}

// Packed stores many posting lists in one flat byte arena — the compressed
// counterpart of the Entity Index's flat []int32 backing array. Building it
// costs a constant number of allocations regardless of how many lists it
// holds. Packed is immutable after Pack and safe for concurrent readers.
type Packed struct {
	data    []byte
	offsets []int64 // len = lists+1; list i occupies data[offsets[i]:offsets[i+1]]
	counts  []int32
	forms   []byte
}

// Pack encodes every list. Lists must be ascending; empty and nil lists
// are allowed and cost nothing.
func Pack(lists [][]int32) *Packed {
	p := &Packed{
		offsets: make([]int64, len(lists)+1),
		counts:  make([]int32, len(lists)),
		forms:   make([]byte, len(lists)),
	}
	size := 0
	for _, ids := range lists {
		if len(ids) == 0 {
			continue
		}
		if sb, sv := sizeBitmap(ids), sizeVarint(ids); sb < sv {
			size += sb
		} else {
			size += sv
		}
	}
	p.data = make([]byte, 0, size)
	var form Form
	for i, ids := range lists {
		p.data, form = Append(p.data, ids)
		p.offsets[i+1] = int64(len(p.data))
		p.counts[i] = int32(len(ids))
		p.forms[i] = byte(form)
	}
	return p
}

// Lists returns the number of lists packed.
func (p *Packed) Lists() int { return len(p.counts) }

// Count returns the number of values in list i without decoding it.
func (p *Packed) Count(i int) int { return int(p.counts[i]) }

// Form returns list i's encoding.
func (p *Packed) Form(i int) Form { return Form(p.forms[i]) }

// AppendList appends list i's values to dst (decode-into-scratch: pass a
// reused buffer sliced to [:0] and no steady-state allocation happens once
// the buffer has grown to the largest list).
func (p *Packed) AppendList(dst []int32, i int) []int32 {
	return AppendDecoded(dst, Form(p.forms[i]), p.data[p.offsets[i]:p.offsets[i+1]], int(p.counts[i]))
}

// SizeBytes returns the arena footprint: encoded bytes plus per-list
// bookkeeping.
func (p *Packed) SizeBytes() int {
	return len(p.data) + 8*len(p.offsets) + 4*len(p.counts) + len(p.forms)
}

// Builder is an append-only posting list for strictly ascending IDs — the
// write-side counterpart of Packed used by the incremental resolver's
// growing token blocks. Appending is O(1): one varint of the delta.
//
// The zero value is an empty list.
type Builder struct {
	enc  []byte
	last int32
	n    int32
}

// Append adds id to the list. It panics if id is not strictly greater than
// the last appended ID — posting lists are ascending by construction
// (entity IDs are assigned in arrival order); callers with unordered input
// must sort first.
func (b *Builder) Append(id int32) {
	if b.n > 0 && id <= b.last {
		panic(fmt.Sprintf("postings: non-ascending append %d after %d", id, b.last))
	}
	b.enc = binary.AppendUvarint(b.enc, uint64(uint32(id-b.last)))
	b.last = id
	b.n++
}

// Len returns the number of IDs in the list.
func (b *Builder) Len() int { return int(b.n) }

// Last returns the largest (most recently appended) ID, or -1 when empty.
func (b *Builder) Last() int32 {
	if b.n == 0 {
		return -1
	}
	return b.last
}

// AppendTo appends the decoded IDs to dst (decode-into-scratch).
func (b *Builder) AppendTo(dst []int32) []int32 {
	return decodeVarint(dst, b.enc, int(b.n))
}

// SizeBytes returns the encoded size in bytes.
func (b *Builder) SizeBytes() int { return len(b.enc) }

// Clone deep-copies the builder.
func (b *Builder) Clone() *Builder {
	return &Builder{enc: append([]byte(nil), b.enc...), last: b.last, n: b.n}
}

// Bytes returns the raw delta+varint encoding of the list — the bytes a
// disk segment stores verbatim. The slice aliases the builder; callers
// that outlive the builder must copy.
func (b *Builder) Bytes() []byte { return b.enc }

// RebaseVarint appends a raw delta+varint encoding (whose first element is
// delta-coded from zero, i.e. absolute) to dst, re-basing that first
// element onto prev — the O(1) splice that lets disjoint ascending lists
// from consecutive disk segments concatenate without a decode/re-encode
// round trip. prev must be strictly below the list's first element; an
// empty enc appends nothing.
func RebaseVarint(dst []byte, prev int32, enc []byte) []byte {
	if len(enc) == 0 {
		return dst
	}
	v, k := binary.Uvarint(enc)
	first := int32(uint32(v))
	dst = binary.AppendUvarint(dst, uint64(uint32(first-prev)))
	return append(dst, enc[k:]...)
}
