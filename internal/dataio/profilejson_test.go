package dataio

import (
	"reflect"
	"testing"

	"metablocking/internal/entity"
)

func TestParseProfileJSON(t *testing.T) {
	p, err := ParseProfileJSON([]byte(`{"id": 7, "source": 2,
		"attributes": {"name": ["Jack Miller"], "address": ["Ast. 5", "Athens"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	// Attribute names come out sorted, values in declaration order; id and
	// source are ignored (arrival order owns IDs).
	want := []entity.Attribute{
		{Name: "address", Value: "Ast. 5"},
		{Name: "address", Value: "Athens"},
		{Name: "name", Value: "Jack Miller"},
	}
	if p.ID != 0 {
		t.Fatalf("ID = %d, want 0 (unassigned)", p.ID)
	}
	if !reflect.DeepEqual(p.Attributes, want) {
		t.Fatalf("attributes = %v, want %v", p.Attributes, want)
	}
}

func TestParseProfileJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseProfileJSON([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMarshalParseProfileRoundTrip(t *testing.T) {
	var p entity.Profile
	p.Add("name", "Jack Miller")
	p.Add("job", "car seller")
	p.Add("name", "J. Miller")

	raw, err := MarshalProfileJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseProfileJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Round-tripping groups attributes by sorted name; a second round trip
	// is the identity.
	want := []entity.Attribute{
		{Name: "job", Value: "car seller"},
		{Name: "name", Value: "Jack Miller"},
		{Name: "name", Value: "J. Miller"},
	}
	if !reflect.DeepEqual(got.Attributes, want) {
		t.Fatalf("first round trip = %v, want %v", got.Attributes, want)
	}
	raw2, err := MarshalProfileJSON(got)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseProfileJSON(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Attributes, got.Attributes) {
		t.Fatal("second round trip is not the identity")
	}
}
