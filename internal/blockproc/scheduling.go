package blockproc

import (
	"math"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// This file implements the block-processing techniques of the paper's
// ref [20] (Papadakis et al., WSDM 2012: "Beyond 100 million entities"),
// the lineage §2 builds on: Block Scheduling orders blocks by expected
// utility, Duplicate Propagation skips comparisons whose entities were
// already matched, and Block Pruning terminates processing when the
// expected gain of the remaining blocks no longer justifies their cost.

// BlockScheduling orders blocks by descending utility, defined as the
// ratio of expected gain (duplicates, approximated by block overlap) to
// cost (comparisons). Following [20], utility is approximated by 1/‖b‖ —
// smaller blocks first — with ties broken by block key, which is also the
// processing order the rest of this repository assumes.
type BlockScheduling struct{}

// Apply returns a new collection with blocks in scheduled order.
func (BlockScheduling) Apply(c *block.Collection) *block.Collection {
	out := c.Clone()
	out.SortByCardinality()
	return out
}

// DuplicatePropagation processes blocks in scheduled order with a matcher
// and skips every comparison involving an already-matched profile of a
// Clean-Clean task (each profile has at most one match) or an
// already-merged pair of a Dirty task. Unlike Iterative Blocking it never
// re-processes blocks; it only propagates known matches forward.
type DuplicatePropagation struct {
	Matcher Matcher
}

// Run executes the workflow and reports executed comparisons and matches.
func (dp DuplicatePropagation) Run(c *block.Collection) IterativeResult {
	// Identical mechanics to Iterative Blocking's forward pass — the
	// paper's Iterative Blocking additionally re-detects via merged
	// representations, which the oracle matcher subsumes.
	return IterativeBlocking{Matcher: dp.Matcher}.Run(c)
}

// BlockPruning adds an early-termination criterion to scheduled block
// processing: blocks are processed smallest-first and processing stops
// when the rolling duplicate-discovery rate falls below MinGain new
// duplicates per comparison, the point where [20] deems the remaining
// (large, noisy) blocks not worth their cost.
type BlockPruning struct {
	Matcher Matcher
	// MinGain is the duplicate-per-comparison rate below which processing
	// stops; zero defaults to 1e-4 (one new duplicate per 10k
	// comparisons).
	MinGain float64
	// WindowSize is the number of trailing comparisons over which the
	// rate is measured; zero defaults to 10000.
	WindowSize int64
}

// PruningResult extends IterativeResult with where processing stopped.
type PruningResult struct {
	IterativeResult
	// ProcessedBlocks counts the blocks fully processed before the
	// termination criterion fired.
	ProcessedBlocks int
	// TotalBlocks is the scheduled block count.
	TotalBlocks int
}

// Run executes scheduled processing with early termination.
func (bp BlockPruning) Run(c *block.Collection) PruningResult {
	minGain := bp.MinGain
	if minGain == 0 {
		minGain = 1e-4
	}
	window := bp.WindowSize
	if window == 0 {
		window = 10000
	}

	ordered := c.Clone()
	ordered.SortByCardinality()

	uf := newUnionFind(c.NumEntities)
	var matched []bool
	if c.Task == entity.CleanClean {
		matched = make([]bool, c.NumEntities)
	}

	res := PruningResult{TotalBlocks: ordered.Len()}
	var windowComparisons, windowMatches int64

	compare := func(a, b entity.ID) {
		if matched != nil && (matched[a] || matched[b]) {
			return
		}
		if uf.find(a) == uf.find(b) {
			return
		}
		res.Comparisons++
		windowComparisons++
		if bp.Matcher.Match(a, b) {
			uf.union(a, b)
			if matched != nil {
				matched[a], matched[b] = true, true
			}
			res.Matches = append(res.Matches, entity.MakePair(a, b))
			windowMatches++
		}
	}

	for k := range ordered.Blocks {
		blk := &ordered.Blocks[k]
		if blk.E2 != nil {
			for _, a := range blk.E1 {
				for _, b := range blk.E2 {
					compare(a, b)
				}
			}
		} else {
			ids := blk.E1
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					compare(ids[i], ids[j])
				}
			}
		}
		res.ProcessedBlocks++

		// Evaluate the termination criterion at window boundaries, after
		// whole blocks only (a block is the unit of work).
		if windowComparisons >= window {
			rate := float64(windowMatches) / float64(windowComparisons)
			if rate < minGain && !math.IsNaN(rate) {
				break
			}
			windowComparisons, windowMatches = 0, 0
		}
	}
	return res
}
