package eval

import "metablocking/internal/entity"

// PairwiseQuality evaluates a matcher's *output* (decided matches) rather
// than a blocking method's candidate set: standard pairwise precision,
// recall and F1 against the ground truth. It completes the end-to-end
// story — blocking measures (PC/PQ/RR) govern what gets compared, pairwise
// measures govern what gets linked.
type PairwiseQuality struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// EvaluateMatches scores decided match pairs against the ground truth.
// Duplicate pairs in matches are counted once.
func EvaluateMatches(matches []entity.Pair, gt *entity.GroundTruth) PairwiseQuality {
	var q PairwiseQuality
	seen := make(map[entity.Pair]struct{}, len(matches))
	for _, p := range matches {
		cp := entity.MakePair(p.A, p.B)
		if _, dup := seen[cp]; dup {
			continue
		}
		seen[cp] = struct{}{}
		if gt.Contains(cp.A, cp.B) {
			q.TruePositives++
		} else {
			q.FalsePositives++
		}
	}
	q.FalseNegatives = gt.Size() - q.TruePositives
	return q
}

// Precision returns TP / (TP + FP).
func (q PairwiseQuality) Precision() float64 {
	if q.TruePositives+q.FalsePositives == 0 {
		return 0
	}
	return float64(q.TruePositives) / float64(q.TruePositives+q.FalsePositives)
}

// Recall returns TP / (TP + FN).
func (q PairwiseQuality) Recall() float64 {
	if q.TruePositives+q.FalseNegatives == 0 {
		return 0
	}
	return float64(q.TruePositives) / float64(q.TruePositives+q.FalseNegatives)
}

// F1 returns the harmonic mean of precision and recall.
func (q PairwiseQuality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
