package store

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

func walTestMeta(shard, shards int, checkpoint uint64, size int) WalMeta {
	return WalMetaFor(incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40}, shard, shards, checkpoint, size)
}

func walTestRecord(id entity.ID) WalRecord {
	return WalRecord{
		ID:      id,
		Profile: entity.Profile{ID: id, Attributes: []entity.Attribute{{Name: "name", Value: "alice smith"}}},
		Keys:    []string{"alice", "smith"},
	}
}

// TestWalWriterRoundTrip pins the writer's accounting and that a closed
// log reads back exactly what was appended, through the recovery path.
func TestWalWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := WalFileName(1)
	w, err := CreateWal(filepath.Join(dir, name), walTestMeta(0, 1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("fresh log reports %d data records, the meta record must not count", w.Records())
	}
	if w.Dirty() {
		t.Fatal("fresh log is dirty after CreateWal's sync")
	}
	if w.Name() != name {
		t.Fatalf("Name() = %q, want %q", w.Name(), name)
	}
	var recs []WalRecord
	for id := entity.ID(0); id < 3; id++ {
		rec := walTestRecord(id)
		recs = append(recs, rec)
		if err := w.Append(AppendWalRecord(nil, rec)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 || !w.Dirty() {
		t.Fatalf("after 3 appends: records=%d dirty=%v", w.Records(), w.Dirty())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Dirty() {
		t.Fatal("dirty after Sync")
	}
	fi, err := os.Stat(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != w.Bytes() {
		t.Fatalf("Bytes() = %d, file is %d", w.Bytes(), fi.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	layout := &DiskLayout{
		Shards: 1,
		Shard:  []*DiskShardState{{Dir: dir, WALs: []string{name}}},
	}
	tail := RecoverWalTail(layout)
	if !reflect.DeepEqual(tail.Records, recs) {
		t.Fatalf("recovered tail %+v, want %+v", tail.Records, recs)
	}
	if tail.Truncated[0] != 0 {
		t.Fatalf("clean log reports %d truncated frames", tail.Truncated[0])
	}
}

// TestWalWriterRemove pins the rotation-abort path: Remove deletes the
// file so a failed manifest commit leaves no log for a checkpoint that
// never happened.
func TestWalWriterRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), WalFileName(2))
	w, err := CreateWal(path, walTestMeta(0, 1, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(AppendWalRecord(nil, walTestRecord(4))); err != nil {
		t.Fatal(err)
	}
	w.Remove()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("log still present after Remove: %v", err)
	}
}

// TestWalAppendOversized pins the frame-size bound: a record above
// maxWalRecord is refused as corruption, not written.
func TestWalAppendOversized(t *testing.T) {
	w, err := CreateWal(filepath.Join(t.TempDir(), WalFileName(1)), walTestMeta(0, 1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, maxWalRecord+1)); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("oversized append: %v, want ErrCorruptArtifact", err)
	}
	if w.Records() != 0 {
		t.Fatalf("refused append counted: %d records", w.Records())
	}
}

// TestDecodeWalRecordCorrupt drives the decoder's refusal branches: any
// malformed payload is ErrCorruptArtifact, never a partial record.
func TestDecodeWalRecordCorrupt(t *testing.T) {
	good := AppendWalRecord(nil, walTestRecord(7))
	cases := map[string][]byte{
		"empty":           {},
		"id overflow":     binary.AppendUvarint(nil, 1<<40),
		"truncated attrs": good[:len(good)/2],
		"trailing bytes":  append(append([]byte{}, good...), 0),
		"attr count past buffer": append(binary.AppendUvarint(
			binary.AppendUvarint(nil, 7), 1<<30), 0),
	}
	for name, payload := range cases {
		if _, err := DecodeWalRecord(payload); !errors.Is(err, ErrCorruptArtifact) {
			t.Errorf("%s: err = %v, want ErrCorruptArtifact", name, err)
		}
	}
	if rec, err := DecodeWalRecord(good); err != nil || rec.ID != 7 {
		t.Fatalf("valid payload refused: %v", err)
	}
}

// TestParseWalSeq pins the file-name filter recovery uses to find logs.
func TestParseWalSeq(t *testing.T) {
	if seq, ok := parseWalSeq(WalFileName(12)); !ok || seq != 12 {
		t.Fatalf("parseWalSeq(WalFileName(12)) = %d, %v", seq, ok)
	}
	for _, name := range []string{"wal-.wal", "wal-12", "manifest-1.bin", "wal-x.wal"} {
		if _, ok := parseWalSeq(name); ok {
			t.Errorf("parseWalSeq accepted %q", name)
		}
	}
}
