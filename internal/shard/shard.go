// Package shard runs the incremental entity index as N hash-partitions
// behind one scatter-gather coordinator — the horizontal axis of ROADMAP
// item 1, and the online analogue of the paper's MapReduce meta-blocking
// direction (ref [20], modeled offline in internal/mrmeta).
//
// Each partition (incremental.Partition) is owned by a single-writer
// actor goroutine with a bounded mailbox gated by a token channel, so
// admission control is per shard. The coordinator (Group) serializes
// arrivals — it is the serving layer's single writer — and runs each
// resolve in two phases:
//
//  1. Scatter-gather (read-only): the coordinator derives the arrival's
//     block keys and the global per-key ScanCount increments (block
//     cardinalities and Block Purging are global decisions a shard cannot
//     make alone), fans the gather out to every live shard, and merges
//     the per-shard weighted neighbors with the exact kernels of
//     incremental.Merger — bit-identical to a single index because every
//     candidate's whole accumulation happens on its home shard in the
//     same key order with the same operand values.
//  2. Commit: only after every gather succeeded does the coordinator
//     assign the next global ID and commit the profile to its home shard
//     (ShardOf = id mod N), then update the global block cardinalities.
//     A failed gather aborts before any state changes, so the ID
//     sequence never skips and batched ≡ serial equivalence holds
//     exactly at every shard count.
//
// Failures are contained per shard: an injected fault or a panic inside
// an actor is recovered into an error for that resolve only. After
// DownAfter consecutive failures a shard is marked down — gathers skip
// it (answers become partial, counted by shard.partial_gathers) and
// resolves homed on it are refused with ErrShardDown, which the serving
// layer's circuit breaker turns into global degraded mode. A reload
// builds a fresh group and clears the marks.
package shard

import (
	"errors"
	"fmt"
	"strconv"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/obs"
	"metablocking/internal/par"
)

// Sentinel errors, matchable with errors.Is across the serving layer.
var (
	// ErrShardBusy reports a shard whose admission queue had no free
	// token — the caller should shed or retry, like a full server queue.
	ErrShardBusy = errors.New("shard: admission queue full")
	// ErrShardDown reports a resolve refused because the home shard of
	// the would-be ID is marked down.
	ErrShardDown = errors.New("shard: shard marked down")
	// ErrClosed reports use of a closed group.
	ErrClosed = errors.New("shard: group closed")
)

// Metric names registered on the group's obs.Metrics.
const (
	// CtrFailures counts per-shard operation failures (faults, panics).
	CtrFailures = "shard.failures"
	// CtrPartialGathers counts resolves answered without one or more
	// down shards — results are correct for the live subset but partial.
	CtrPartialGathers = "shard.partial_gathers"
	// CtrCheckpointFailures counts group checkpoints that failed on at
	// least one shard (and therefore did not advance the checkpoint id).
	CtrCheckpointFailures = "shard.checkpoint_failures"
	// CtrCompactFailures counts background compactions that errored or
	// were vetoed by an injected fault.
	CtrCompactFailures = "shard.compact_failures"
	// GaugeDown tracks how many shards are currently marked down.
	GaugeDown = "shard.down"
)

// GatherSite returns the fault-injection site name of shard i's gather
// phase (see internal/fault; armed via cmd/serve -fault).
func GatherSite(i int) string { return "shard." + strconv.Itoa(i) + ".gather" }

// CommitSite returns the fault-injection site name of shard i's commit
// phase.
func CommitSite(i int) string { return "shard." + strconv.Itoa(i) + ".commit" }

// CompactSite returns the fault-injection site name of shard i's
// background compaction, checked before the merge starts — a delay spec
// pins the compaction window open for chaos tests, an error spec vetoes
// the compaction entirely.
func CompactSite(i int) string { return "shard." + strconv.Itoa(i) + ".compact" }

// WalAppendSite returns the fault-injection site name of shard i's
// write-ahead-log append — checked before the record is framed, so an
// error spec fails the commit with the memtable untouched.
func WalAppendSite(i int) string { return "shard." + strconv.Itoa(i) + ".wal.append" }

// WalSyncSite returns the fault-injection site name of shard i's
// write-ahead-log fsync — checked only when unsynced records exist, so
// a delay spec deterministically pins the group-commit window open for
// chaos tests.
func WalSyncSite(i int) string { return "shard." + strconv.Itoa(i) + ".wal.sync" }

// WalRotateSite returns the fault-injection site name of shard i's
// write-ahead-log rotation — the new-generation creation a seal performs
// before its manifest commits.
func WalRotateSite(i int) string { return "shard." + strconv.Itoa(i) + ".wal.rotate" }

// Backend is one shard's partition implementation — the contract the
// actor drives. *incremental.Partition is the in-memory implementation;
// internal/diskindex provides the out-of-core one. Backends are
// single-writer: only the owning actor touches them after start.
type Backend interface {
	// Len returns the number of profiles homed on the partition.
	Len() int
	// Blocks returns the number of distinct block keys present.
	Blocks() int
	// Gather runs the ScanCount accumulation for one arrival (see
	// incremental.Partition.Gather). Implementations may ignore
	// maxWeighted and return every weighted neighbor — a superset the
	// coordinator's exact top-K merge reduces identically.
	Gather(keys []string, incs []float64, bi int, nb float64, maxWeighted int, dst []incremental.ShardCand) []incremental.ShardCand
	// Commit homes a newly assigned profile on the partition.
	Commit(id entity.ID, p entity.Profile, keys []string) error
	// Snapshot deep-copies the partition in canonical segment form.
	Snapshot() *incremental.PartitionSnapshot
}

// Maintainer is the optional disk-backed extension of Backend: sealing
// the memtable into a durable generation and merging sealed segments in
// the background. The coordinator checkpoints all Maintainer backends
// together so every shard's manifests cut the global ID sequence at the
// same point.
type Maintainer interface {
	// PendingBytes estimates the unsealed memtable footprint — what the
	// coordinator compares against Config.MemtableBudget.
	PendingBytes() int
	// Seal persists the memtable as a new segment (if non-empty) and
	// commits a manifest under the coordinator-assigned checkpoint id at
	// the given global resolver size.
	Seal(checkpoint uint64, size int) error
	// MaybeCompact merges sealed segments when the backend's policy
	// triggers, reporting whether a compaction ran. Called by the actor
	// off the request path, after a seal's reply is sent.
	MaybeCompact() (bool, error)
	// SyncWAL fsyncs the backend's write-ahead log — the group-commit
	// barrier the serving layer invokes per micro-batch (sync policy
	// "always") or on a timer ("interval"). A no-op when the WAL is
	// disabled or already clean.
	SyncWAL() error
	// DiskStats reports the backend's disk-tier counters.
	DiskStats() DiskStats
}

// DiskStats is one disk-backed shard's tier snapshot, served by
// GET /v1/admin/status.
type DiskStats struct {
	// Segments is the current sealed segment count.
	Segments int `json:"segments"`
	// MemtableBytes is the estimated unsealed memtable footprint.
	MemtableBytes int `json:"memtable_bytes"`
	// Checkpoint is the last durable checkpoint id.
	Checkpoint uint64 `json:"checkpoint"`
	// Seals and Compactions count manifest commits by cause.
	Seals       int64 `json:"seals"`
	Compactions int64 `json:"compactions"`
	// PageReads and CacheHits expose the block cache's effectiveness.
	PageReads int64 `json:"page_reads"`
	CacheHits int64 `json:"cache_hits"`
	// WalBytes is the live write-ahead log's size; 0 when disabled.
	WalBytes int64 `json:"wal_bytes,omitempty"`
	// WalAppends counts records logged since open.
	WalAppends int64 `json:"wal_appends,omitempty"`
	// WalReplayed and WalTruncated report the last recovery: records
	// replayed on top of the checkpoint and frames dropped as torn,
	// undecodable, or beyond the contiguous acknowledged run.
	WalReplayed  int64 `json:"wal_replayed,omitempty"`
	WalTruncated int64 `json:"wal_truncated,omitempty"`
	// WalSyncs counts fsync barriers; WalSyncLastNs and WalSyncTotalNs
	// expose their latency (last and cumulative).
	WalSyncs       int64 `json:"wal_syncs,omitempty"`
	WalSyncLastNs  int64 `json:"wal_sync_last_ns,omitempty"`
	WalSyncTotalNs int64 `json:"wal_sync_total_ns,omitempty"`
}

// Config parameterizes a group. The zero value of every field except
// Resolver is usable; defaults are applied by New.
type Config struct {
	// Resolver is the index configuration every partition shares —
	// scheme, K, MaxBlockSize, MinTokenLength. Defaults follow
	// incremental.NewResolver (MaxBlockSize 1000).
	Resolver incremental.Config
	// Shards is the partition count. Default 1.
	Shards int
	// QueueDepth bounds each shard's admission queue (mailbox tokens).
	// Default 2.
	QueueDepth int
	// DownAfter is how many consecutive failures mark a shard down.
	// Default 3.
	DownAfter int
	// Fault injects failures at the per-shard gather/commit/compact
	// sites. Nil means no injection.
	Fault *fault.Injector
	// Metrics receives the shard.* counters and gauges. Nil means a
	// private registry.
	Metrics *obs.Metrics
	// Backends, when non-nil, supplies each shard's partition
	// implementation — the hook the out-of-core index plugs in through.
	// Nil uses in-memory incremental.Partitions.
	Backends func(shard int) (Backend, error)
	// MemtableBudget, when positive and the backends are Maintainers,
	// auto-checkpoints the group as soon as any shard's pending memtable
	// bytes exceed it — the knob behind cmd/serve -memtable-budget.
	MemtableBudget int
	// Checkpoint seeds the checkpoint counter for restore paths, so a
	// recovered or reloaded group continues its directory's lineage
	// above every id already on disk.
	Checkpoint uint64
	// OnGather, when non-nil, observes each live shard's gather reply as
	// it lands during a resolve: the shard index and how many weighed
	// neighbors it surfaced. This is the early-emit hook the budget-aware
	// serving layer (internal/budget) uses to account gather work per
	// request while the scatter-gather is still in flight on other
	// shards.
	OnGather func(shard, weighed int)
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.Resolver.MaxBlockSize == 0 {
		cfg.Resolver.MaxBlockSize = 1000
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	return cfg
}

// Actor mailbox operations.
const (
	opGather = iota
	opCommit
	opSnapshot
	opStats
	opSeal
	opWalSync
)

// request is the coordinator↔actor message. Each actor owns exactly one,
// preallocated by New: the coordinator fills the inputs, submits it, and
// reads the outputs after the reply — no per-resolve allocation.
type request struct {
	op int

	// Gather inputs (read-only for the actor; keys/incs are coordinator
	// scratch, valid for the duration of the round trip).
	keys        []string
	incs        []float64
	bi          int
	nb          float64
	maxWeighted int

	// Commit inputs. Partition.Commit copies keys.
	id      entity.ID
	profile entity.Profile

	// Seal inputs (coordinator-assigned checkpoint cut).
	checkpoint uint64
	sealSize   int

	// Outputs. cands is actor-owned gather scratch, valid until the next
	// submit to the same actor.
	cands    []incremental.ShardCand
	snap     *incremental.PartitionSnapshot
	profiles int
	blocks   int
	// pending is the backend's memtable estimate after a commit (disk
	// backends only) — what triggers the coordinator's auto-checkpoint.
	pending int
	disk    DiskStats
	hasDisk bool
	err     error
}

// actor is one shard's single-writer goroutine plus its admission gate.
type actor struct {
	back Backend
	// maint is back's disk-tier extension, nil for in-memory partitions.
	maint Maintainer

	// tokens gates admission: a submit acquires a token (non-blocking —
	// a full channel is ErrShardBusy, the token-channel backpressure
	// pattern), the coordinator releases it after consuming the reply.
	// The mailbox has the same capacity, so a token guarantees a
	// non-blocking send.
	tokens  chan struct{}
	mailbox chan *request
	replies chan *request
	exited  chan struct{}

	fault       *fault.Injector
	siteGather  string
	siteCommit  string
	siteCompact string
	metrics     *obs.Metrics

	// req is the coordinator's preallocated message for this actor.
	req *request
}

func (a *actor) submit(req *request) error {
	select {
	case a.tokens <- struct{}{}:
	default:
		return ErrShardBusy
	}
	a.mailbox <- req
	return nil
}

// receive waits for the actor's reply and releases the admission token.
func (a *actor) receive() *request {
	req := <-a.replies
	<-a.tokens
	return req
}

func (a *actor) loop() {
	defer close(a.exited)
	for req := range a.mailbox {
		a.handle(req)
		sealed := req.op == opSeal && req.err == nil
		a.replies <- req
		// Compaction runs after the reply — a background task of the
		// actor, off the request path: the coordinator (and the client
		// whose resolve triggered the seal) is already answered, and only
		// this shard's next operation waits on the merge. Other shards
		// keep serving.
		if sealed && a.maint != nil {
			a.compact()
		}
	}
}

// compact runs the backend's compaction policy behind its fault site,
// recovering panics so a broken merge cannot kill the actor.
func (a *actor) compact() {
	defer func() {
		if pe := par.Recovered(recover()); pe != nil {
			a.metrics.Counter(CtrCompactFailures).Inc()
		}
	}()
	if err := a.fault.Check(a.siteCompact); err != nil {
		a.metrics.Counter(CtrCompactFailures).Inc()
		return
	}
	if _, err := a.maint.MaybeCompact(); err != nil {
		a.metrics.Counter(CtrCompactFailures).Inc()
	}
}

// handle executes one operation, recovering an injected or genuine panic
// into a typed error so a broken shard cannot kill its actor — the
// isolation contract chaos tests pin down.
func (a *actor) handle(req *request) {
	req.err = nil
	defer func() {
		if pe := par.Recovered(recover()); pe != nil {
			req.err = pe
		}
	}()
	switch req.op {
	case opGather:
		if err := a.fault.Check(a.siteGather); err != nil {
			req.err = err
			return
		}
		req.cands = a.back.Gather(req.keys, req.incs, req.bi, req.nb, req.maxWeighted, req.cands)
	case opCommit:
		if err := a.fault.Check(a.siteCommit); err != nil {
			req.err = err
			return
		}
		req.pending = 0
		req.err = a.back.Commit(req.id, req.profile, req.keys)
		if req.err == nil && a.maint != nil {
			req.pending = a.maint.PendingBytes()
		}
	case opSnapshot:
		req.snap = a.back.Snapshot()
	case opStats:
		req.profiles = a.back.Len()
		req.blocks = a.back.Blocks()
		req.hasDisk = a.maint != nil
		if a.maint != nil {
			req.disk = a.maint.DiskStats()
		}
	case opSeal:
		if a.maint == nil {
			req.err = fmt.Errorf("shard: seal on an in-memory partition")
			return
		}
		req.err = a.maint.Seal(req.checkpoint, req.sealSize)
	case opWalSync:
		if a.maint != nil {
			req.err = a.maint.SyncWAL()
		}
	}
}

// Group coordinates N shard actors behind the incremental.Index contract.
// Like the single-index Resolver it is not safe for concurrent use — the
// serving layer serializes calls behind its writer lock; the parallelism
// lives below, across the actors of one call.
type Group struct {
	cfg    Config
	actors []*actor

	// blockSize is the coordinator's global view of every block's
	// cardinality — the sum of the per-shard slices — from which the
	// per-key increments, Block Purging and the ECBS block count are
	// derived exactly as a single index would.
	blockSize map[string]int
	size      int

	keyer  incremental.Keyer
	merger incremental.Merger

	// checkpoint is the last checkpoint id every Maintainer backend
	// committed; maint records whether the backends are disk-backed.
	checkpoint uint64
	maint      bool

	// Per-resolve scratch.
	incs  []float64
	lists [][]incremental.ShardCand
	sent  []bool

	// Per-shard health: consecutive failures and the down marks.
	fails []int
	down  []bool

	metrics *obs.Metrics
	closed  bool
}

// New builds a group of cfg.Shards empty partitions and starts their
// actors. The caller must Close the group to stop them.
func New(cfg Config) (*Group, error) {
	if cfg.Resolver.Scheme == core.EJS {
		return nil, incremental.ErrUnsupportedScheme
	}
	g, err := newGroup(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	g.start()
	return g, nil
}

// Restored starts a group over backends that already hold state — the
// disk-recovery path, where partitions come back from their segment
// files instead of being replayed. size and blockSize must describe the
// recovered state; cfg.Checkpoint must sit at or above every checkpoint
// id on disk.
func Restored(cfg Config, size int, blockSize map[string]int) (*Group, error) {
	if cfg.Resolver.Scheme == core.EJS {
		return nil, incremental.ErrUnsupportedScheme
	}
	g, err := newGroup(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	g.size = size
	for k, n := range blockSize {
		g.blockSize[k] = n
	}
	g.start()
	return g, nil
}

// newGroup builds the group without starting actor goroutines, so
// restore paths can seed partitions single-threaded first.
func newGroup(cfg Config) (*Group, error) {
	g := &Group{
		cfg:        cfg,
		actors:     make([]*actor, cfg.Shards),
		blockSize:  make(map[string]int),
		keyer:      incremental.Keyer{MinTokenLength: cfg.Resolver.MinTokenLength},
		checkpoint: cfg.Checkpoint,
		lists:      make([][]incremental.ShardCand, cfg.Shards),
		sent:       make([]bool, cfg.Shards),
		fails:      make([]int, cfg.Shards),
		down:       make([]bool, cfg.Shards),
		metrics:    cfg.Metrics,
	}
	g.maint = cfg.Backends != nil
	for i := range g.actors {
		var back Backend
		if cfg.Backends != nil {
			var err error
			if back, err = cfg.Backends(i); err != nil {
				return nil, fmt.Errorf("shard %d backend: %w", i, err)
			}
		} else {
			back = incremental.NewPartition(cfg.Resolver.Scheme, cfg.Shards, i)
		}
		maint, _ := back.(Maintainer)
		if maint == nil {
			g.maint = false
		}
		g.actors[i] = &actor{
			back:        back,
			maint:       maint,
			tokens:      make(chan struct{}, cfg.QueueDepth),
			mailbox:     make(chan *request, cfg.QueueDepth),
			replies:     make(chan *request, 1),
			exited:      make(chan struct{}),
			fault:       cfg.Fault,
			siteGather:  GatherSite(i),
			siteCommit:  CommitSite(i),
			siteCompact: CompactSite(i),
			metrics:     cfg.Metrics,
			req:         new(request),
		}
	}
	return g, nil
}

func (g *Group) start() {
	for _, a := range g.actors {
		go a.loop()
	}
}

// Shards returns the partition count.
func (g *Group) Shards() int { return len(g.actors) }

// Size implements incremental.Index: profiles resolved so far.
func (g *Group) Size() int { return g.size }

// Config returns the effective (post-defaults) group configuration.
func (g *Group) Config() Config { return g.cfg }

// Resolve implements incremental.Index: phase 1 scatter-gathers the
// pruned candidates, phase 2 assigns the next global ID and commits the
// profile to its home shard. On any error nothing was committed and no
// ID was consumed.
func (g *Group) Resolve(p entity.Profile) (incremental.BatchResult, error) {
	if g.closed {
		return incremental.BatchResult{ID: -1}, ErrClosed
	}
	id := entity.ID(g.size)
	home := incremental.ShardOf(id, len(g.actors))
	if g.down[home] {
		return incremental.BatchResult{ID: -1},
			fmt.Errorf("%w: shard %d, home of profile %d", ErrShardDown, home, id)
	}
	keys := g.keyer.Keys(p)
	cands, err := g.gather(keys)
	if err != nil {
		return incremental.BatchResult{ID: -1}, err
	}

	a := g.actors[home]
	req := a.req
	req.op = opCommit
	req.id = id
	req.profile = p
	req.keys = keys
	if err := a.submit(req); err != nil {
		return incremental.BatchResult{ID: -1}, fmt.Errorf("shard %d commit: %w", home, err)
	}
	if req = a.receive(); req.err != nil {
		g.noteFailure(home)
		return incremental.BatchResult{ID: -1}, fmt.Errorf("shard %d commit: %w", home, req.err)
	}
	g.noteSuccess(home)
	g.size++
	for _, k := range keys {
		g.blockSize[k]++
	}
	// Auto-checkpoint: when the home shard's memtable outgrew the budget,
	// seal every shard at the size the resolve just reached. The resolve
	// itself already succeeded — a failed checkpoint degrades durability
	// (counted), not correctness.
	if g.maint && g.cfg.MemtableBudget > 0 && req.pending > g.cfg.MemtableBudget {
		_ = g.Checkpoint()
	}
	return incremental.BatchResult{ID: id, Candidates: cands}, nil
}

// Checkpoint seals every shard's memtable under the next checkpoint id,
// cutting all manifests at the same global size — the consistency unit
// disk recovery rolls back to. A no-op for in-memory backends. The
// checkpoint id only advances when every shard committed its manifest;
// a partial checkpoint is left for recovery to ignore (its id is not
// common to all shards) and the next attempt reuses the same id.
func (g *Group) Checkpoint() error {
	if g.closed {
		return ErrClosed
	}
	if !g.maint {
		return nil
	}
	next := g.checkpoint + 1
	var firstErr error
	for i, a := range g.actors {
		g.sent[i] = false
		if g.down[i] {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d seal: %w", i, ErrShardDown)
			}
			continue
		}
		req := a.req
		req.op = opSeal
		req.checkpoint = next
		req.sealSize = g.size
		if err := a.submit(req); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d seal: %w", i, err)
			}
			continue
		}
		g.sent[i] = true
	}
	for i, a := range g.actors {
		if !g.sent[i] {
			continue
		}
		req := a.receive()
		if req.err != nil {
			g.noteFailure(i)
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d seal: %w", i, req.err)
			}
			continue
		}
		g.noteSuccess(i)
	}
	if firstErr != nil {
		g.metrics.Counter(CtrCheckpointFailures).Inc()
		return firstErr
	}
	g.checkpoint = next
	return nil
}

// Checkpointed returns the last fully committed checkpoint id.
func (g *Group) Checkpointed() uint64 { return g.checkpoint }

// SyncWAL runs the group-commit barrier: every live shard fsyncs its
// write-ahead log. An error means some acknowledged-in-memory commit may
// not be durable yet — the serving layer converts the affected batch's
// replies into errors (the commits themselves stand, so a retry observes
// at-least-once semantics). Down shards are skipped: a commit only
// succeeds on a live shard, so a down shard holds no unsynced records
// from any batch still awaiting its reply. A no-op for in-memory
// backends.
func (g *Group) SyncWAL() error {
	if g.closed {
		return ErrClosed
	}
	if !g.maint {
		return nil
	}
	var firstErr error
	for i, a := range g.actors {
		g.sent[i] = false
		if g.down[i] {
			continue
		}
		req := a.req
		req.op = opWalSync
		if err := a.submit(req); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d wal sync: %w", i, err)
			}
			continue
		}
		g.sent[i] = true
	}
	for i, a := range g.actors {
		if !g.sent[i] {
			continue
		}
		req := a.receive()
		if req.err != nil {
			g.noteFailure(i)
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d wal sync: %w", i, req.err)
			}
			continue
		}
		g.noteSuccess(i)
	}
	return firstErr
}

// Peek implements incremental.Index: the read-only scatter-gather alone.
func (g *Group) Peek(p entity.Profile) ([]incremental.Candidate, error) {
	if g.closed {
		return nil, ErrClosed
	}
	return g.gather(g.keyer.Keys(p))
}

// PeekExcluding is the read-only resume gather of budget-aware streaming
// (internal/budget): it recomputes the candidates an already-committed
// profile received from its own Resolve by removing that profile's
// contribution from the coordinator's global statistics — the sharded
// analogue of incremental.Resolver.PeekExcluding. p must be the same
// profile committed as exclude (same content, hence the same block
// keys): every keyed block's global cardinality is decremented before
// increment derivation and Block Purging, exclude's singleton blocks are
// discounted from the ECBS block count, and exclude itself is dropped
// from its home shard's gather reply before the exact merge. When no
// other profile was committed in between, the result is bit-identical to
// the original Resolve's candidate list at every shard count.
func (g *Group) PeekExcluding(p entity.Profile, exclude entity.ID) ([]incremental.Candidate, error) {
	if g.closed {
		return nil, ErrClosed
	}
	if int(exclude) < 0 || int(exclude) >= g.size {
		return nil, fmt.Errorf("shard: excluded profile %d of %d", exclude, g.size)
	}
	return g.gatherExcluding(g.keyer.Keys(p), exclude)
}

func (g *Group) gather(keys []string) ([]incremental.Candidate, error) {
	return g.gatherExcluding(keys, -1)
}

// gatherExcluding runs phase 1: global per-key increments, fan-out to
// every live shard, exact merge. Any live-shard failure aborts the whole
// resolve (after collecting every outstanding reply); down shards are
// skipped and the answer marked partial in metrics. A non-negative
// exclude is the resume path — see PeekExcluding for the compensation
// arithmetic.
func (g *Group) gatherExcluding(keys []string, exclude entity.ID) ([]incremental.Candidate, error) {
	bi := len(keys)
	nb := float64(len(g.blockSize)) + 1
	sizeOf := func(k string) int { return g.blockSize[k] }
	maxWeighted := g.cfg.Resolver.K
	if exclude >= 0 {
		sizeOf = func(k string) int {
			// Every gather key names a block exclude is a member of.
			if n := g.blockSize[k] - 1; n > 0 {
				return n
			}
			return 0
		}
		for _, k := range keys {
			if g.blockSize[k] == 1 {
				nb--
			}
		}
		if maxWeighted > 0 {
			// One extra local slot so dropping exclude from its home
			// shard's top-K cannot cost a real candidate.
			maxWeighted++
		}
	}
	g.incs = incremental.KeyIncrements(g.incs[:0], keys, sizeOf,
		g.cfg.Resolver.Scheme, g.cfg.Resolver.MaxBlockSize)

	partial := false
	var firstErr error
	for i, a := range g.actors {
		g.sent[i] = false
		g.lists[i] = nil
		if g.down[i] {
			partial = true
			continue
		}
		if firstErr != nil {
			continue
		}
		req := a.req
		req.op = opGather
		req.keys = keys
		req.incs = g.incs
		req.bi = bi
		req.nb = nb
		req.maxWeighted = maxWeighted
		if err := a.submit(req); err != nil {
			firstErr = fmt.Errorf("shard %d gather: %w", i, err)
			continue
		}
		g.sent[i] = true
	}
	for i, a := range g.actors {
		if !g.sent[i] {
			continue
		}
		req := a.receive()
		if req.err != nil {
			g.noteFailure(i)
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d gather: %w", i, req.err)
			}
			continue
		}
		g.noteSuccess(i)
		g.lists[i] = req.cands
		if g.cfg.OnGather != nil {
			g.cfg.OnGather(i, len(req.cands))
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if partial {
		g.metrics.Counter(CtrPartialGathers).Inc()
	}
	if exclude >= 0 {
		home := incremental.ShardOf(exclude, len(g.actors))
		list := g.lists[home]
		for idx := range list {
			if list[idx].ID == exclude {
				g.lists[home] = append(list[:idx], list[idx+1:]...)
				break
			}
		}
	}
	if k := g.cfg.Resolver.K; k > 0 {
		return g.merger.TopK(k, g.lists), nil
	}
	return g.merger.AboveMean(g.lists), nil
}

func (g *Group) noteFailure(i int) {
	g.metrics.Counter(CtrFailures).Inc()
	g.fails[i]++
	if g.fails[i] >= g.cfg.DownAfter && !g.down[i] {
		g.down[i] = true
		g.metrics.Gauge(GaugeDown).Set(int64(g.downCount()))
	}
}

func (g *Group) noteSuccess(i int) { g.fails[i] = 0 }

func (g *Group) downCount() int {
	n := 0
	for _, d := range g.down {
		if d {
			n++
		}
	}
	return n
}

// Down reports which shards are currently marked down.
func (g *Group) Down() []bool { return append([]bool(nil), g.down...) }

// Stat is one shard's health and size snapshot, served by
// GET /v1/admin/status.
type Stat struct {
	Shard               int  `json:"shard"`
	Profiles            int  `json:"profiles"`
	Blocks              int  `json:"blocks"`
	QueueFree           int  `json:"queue_free"`
	Down                bool `json:"down"`
	ConsecutiveFailures int  `json:"consecutive_failures"`
	// Disk reports the out-of-core tier; nil for in-memory partitions.
	Disk *DiskStats `json:"disk,omitempty"`
}

// Stats queries every actor for its sizes. Down shards still answer —
// down marks failing operations, not a dead goroutine.
func (g *Group) Stats() []Stat {
	stats := make([]Stat, len(g.actors))
	for i, a := range g.actors {
		stats[i] = Stat{
			Shard:               i,
			QueueFree:           cap(a.tokens) - len(a.tokens),
			Down:                g.down[i],
			ConsecutiveFailures: g.fails[i],
		}
		if g.closed {
			continue
		}
		req := a.req
		req.op = opStats
		if err := a.submit(req); err != nil {
			continue
		}
		req = a.receive()
		stats[i].Profiles = req.profiles
		stats[i].Blocks = req.blocks
		if req.hasDisk {
			d := req.disk
			stats[i].Disk = &d
		}
	}
	return stats
}

// PartitionSnapshots deep-copies every shard's segment — what
// internal/store persists as the sharded artifact.
func (g *Group) PartitionSnapshots() []*incremental.PartitionSnapshot {
	segs := make([]*incremental.PartitionSnapshot, len(g.actors))
	for i, a := range g.actors {
		if g.closed {
			// Actors have exited; their partitions are quiescent and
			// safe to read directly.
			segs[i] = a.back.Snapshot()
			continue
		}
		req := a.req
		req.op = opSnapshot
		if err := a.submit(req); err != nil {
			// The coordinator is the only submitter, so tokens are
			// always free here; guard anyway.
			segs[i] = a.back.Snapshot()
			continue
		}
		segs[i] = a.receive().snap
	}
	return segs
}

// Snapshot implements incremental.Index: the canonical global snapshot,
// byte-identical to what a single-index Resolver over the same arrivals
// would produce — shard count does not leak into the artifact.
func (g *Group) Snapshot() *incremental.Snapshot {
	return incremental.MergeSnapshots(g.cfg.Resolver, g.PartitionSnapshots())
}

// FromSnapshot rebuilds a group from a canonical snapshot, routing each
// profile to its home shard. The snapshot's Config overrides
// cfg.Resolver, mirroring incremental.FromSnapshot; its block index is
// validated against the per-profile key lists so a corrupted artifact is
// refused rather than silently skewing weights.
func FromSnapshot(s *incremental.Snapshot, cfg Config) (*Group, error) {
	if s == nil {
		return nil, fmt.Errorf("shard: nil snapshot")
	}
	if len(s.BlocksOf) != len(s.Profiles) {
		return nil, fmt.Errorf("shard: snapshot has %d profiles but %d block-key lists",
			len(s.Profiles), len(s.BlocksOf))
	}
	if s.Config.Scheme == core.EJS {
		return nil, incremental.ErrUnsupportedScheme
	}
	cfg.Resolver = s.Config
	g, err := newGroup(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	for i, p := range s.Profiles {
		id := entity.ID(i)
		home := incremental.ShardOf(id, len(g.actors))
		if err := g.actors[home].back.Commit(id, p, s.BlocksOf[i]); err != nil {
			return nil, err
		}
		for _, k := range s.BlocksOf[i] {
			g.blockSize[k]++
		}
	}
	g.size = len(s.Profiles)
	// Cross-check the snapshot's own block index against what the key
	// lists imply — the sharded analogue of FromSnapshot's member
	// validation.
	if len(s.Blocks) != len(g.blockSize) {
		return nil, fmt.Errorf("shard: snapshot has %d blocks but key lists imply %d",
			len(s.Blocks), len(g.blockSize))
	}
	for k, members := range s.Blocks {
		if len(members) != g.blockSize[k] {
			return nil, fmt.Errorf("shard: snapshot block %q has %d members but key lists imply %d",
				k, len(members), g.blockSize[k])
		}
	}
	g.start()
	return g, nil
}

// FromPartitionSnapshots rebuilds a group from per-shard segments (the
// sharded artifact), via the canonical merge so the same validation
// applies regardless of on-disk layout.
func FromPartitionSnapshots(cfg incremental.Config, segs []*incremental.PartitionSnapshot, gcfg Config) (*Group, error) {
	for i, seg := range segs {
		if seg == nil {
			return nil, fmt.Errorf("shard: nil segment %d", i)
		}
		if seg.Shard != i || seg.Shards != len(segs) {
			return nil, fmt.Errorf("shard: segment %d labeled shard %d of %d", i, seg.Shard, seg.Shards)
		}
	}
	return FromSnapshot(incremental.MergeSnapshots(cfg, segs), gcfg)
}

// Close implements incremental.Index: stops every actor, waits for them
// to exit, and releases backends that hold resources (open segment
// files). Idempotent.
func (g *Group) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	var firstErr error
	for _, a := range g.actors {
		close(a.mailbox)
		<-a.exited
		if c, ok := a.back.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
