package blockproc

import (
	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// Matcher decides whether two profiles match. Iterative Blocking is
// evaluated with an oracle matcher backed by the ground truth, following
// the paper's best-practice of treating entity matching as an orthogonal
// task (§3, §6.4).
type Matcher interface {
	Match(a, b entity.ID) bool
}

// OracleMatcher answers match queries from the ground truth.
type OracleMatcher struct {
	GT *entity.GroundTruth
}

// Match implements Matcher.
func (m OracleMatcher) Match(a, b entity.ID) bool { return m.GT.Contains(a, b) }

// IterativeBlocking processes blocks sequentially and propagates every
// identified duplicate to the subsequently processed blocks, saving
// repeated comparisons between already-merged profiles and potentially
// detecting extra duplicates through transitivity (paper §2, ref [27]).
//
// Following the paper's optimized configuration (§6.4), blocks are ordered
// from the smallest to the largest cardinality, and for Clean-Clean ER the
// ideal case is assumed: once two profiles have been matched, neither is
// compared to any other co-occurring profile.
type IterativeBlocking struct {
	Matcher Matcher
}

// IterativeResult reports what an Iterative Blocking run executed.
type IterativeResult struct {
	// Comparisons is the number of pairwise comparisons executed.
	Comparisons int64
	// Matches holds the detected duplicate pairs in detection order.
	Matches []entity.Pair
}

// Run executes Iterative Blocking over the collection and returns the
// executed comparison count and detected matches. The input collection is
// not modified.
func (ib IterativeBlocking) Run(c *block.Collection) IterativeResult {
	ordered := c.Clone()
	ordered.SortByCardinality()

	uf := newUnionFind(c.NumEntities)
	// matched marks Clean-Clean profiles that found their (unique) match;
	// under the ideal-case assumption they are excluded from any further
	// comparison.
	var matched []bool
	if c.Task == entity.CleanClean {
		matched = make([]bool, c.NumEntities)
	}

	var res IterativeResult
	compare := func(a, b entity.ID) {
		if matched != nil && (matched[a] || matched[b]) {
			return
		}
		if uf.find(a) == uf.find(b) {
			return // duplicates already merged: comparison saved
		}
		res.Comparisons++
		if ib.Matcher.Match(a, b) {
			uf.union(a, b)
			if matched != nil {
				matched[a], matched[b] = true, true
			}
			res.Matches = append(res.Matches, entity.MakePair(a, b))
		}
	}

	for k := range ordered.Blocks {
		blk := &ordered.Blocks[k]
		if blk.E2 != nil {
			for _, a := range blk.E1 {
				for _, b := range blk.E2 {
					compare(a, b)
				}
			}
			continue
		}
		ids := blk.E1
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				compare(ids[i], ids[j])
			}
		}
	}
	return res
}

// unionFind is a weighted quick-union with path halving over entity IDs.
type unionFind struct {
	parent []entity.ID
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]entity.ID, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = entity.ID(i)
	}
	return uf
}

func (u *unionFind) find(x entity.ID) entity.ID {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b entity.ID) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
