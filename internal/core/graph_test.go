package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

// exampleGraph builds the blocking graph of the paper's running example.
func exampleGraph(t *testing.T, scheme Scheme) *Graph {
	t.Helper()
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	return NewGraph(blocks, scheme)
}

// edgeSet collects all edges of a traversal into a map.
func edgeSet(traverse func(func(i, j entity.ID, w float64))) map[entity.Pair]float64 {
	out := make(map[entity.Pair]float64)
	traverse(func(i, j entity.ID, w float64) {
		out[entity.MakePair(i, j)] = w
	})
	return out
}

// TestJSWeightsPaperExample verifies the blocking graph of Figure 2(a):
// ten edges with the exact Jaccard weights printed in the figure.
func TestJSWeightsPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := edgeSet(g.ForEachEdge)
	want := paperexample.JSWeights()
	if len(got) != len(want) {
		t.Fatalf("|EB| = %d, want %d", len(got), len(want))
	}
	for p, w := range want {
		gw, ok := got[p]
		if !ok {
			t.Errorf("edge %v missing", p)
			continue
		}
		if math.Abs(gw-w) > 1e-12 {
			t.Errorf("edge %v weight = %v, want %v", p, gw, w)
		}
	}
}

// TestOriginalWeightingPaperExample verifies that Algorithm 2 derives the
// same graph.
func TestOriginalWeightingPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := edgeSet(g.ForEachEdgeOriginal)
	for p, w := range paperexample.JSWeights() {
		if math.Abs(got[p]-w) > 1e-12 {
			t.Errorf("edge %v weight = %v, want %v", p, got[p], w)
		}
	}
	if len(got) != 10 {
		t.Fatalf("|EB| = %d, want 10", len(got))
	}
}

// TestSchemeWeightsHandComputed checks one representative edge per scheme
// against hand-derived values on the paper example.
func TestSchemeWeightsHandComputed(t *testing.T) {
	p13 := entity.MakePair(paperexample.P1, paperexample.P3)
	p34 := entity.MakePair(paperexample.P3, paperexample.P4)
	p35 := entity.MakePair(paperexample.P3, paperexample.P5)

	// CBS: raw shared-block counts.
	cbs := edgeSet(exampleGraph(t, CBS).ForEachEdge)
	if cbs[p13] != 2 || cbs[p34] != 1 {
		t.Errorf("CBS: got %v and %v, want 2 and 1", cbs[p13], cbs[p34])
	}

	// ARCS: Σ 1/‖b‖ — jack and miller have 1 comparison each; car has 6.
	arcs := edgeSet(exampleGraph(t, ARCS).ForEachEdge)
	if math.Abs(arcs[p13]-2) > 1e-12 {
		t.Errorf("ARCS(p1,p3) = %v, want 2", arcs[p13])
	}
	if math.Abs(arcs[p34]-1.0/6) > 1e-12 {
		t.Errorf("ARCS(p3,p4) = %v, want 1/6", arcs[p34])
	}
	if math.Abs(arcs[p35]-(1+1.0/6)) > 1e-12 {
		t.Errorf("ARCS(p3,p5) = %v, want 7/6", arcs[p35])
	}

	// ECBS: CBS·log(|B|/|Bi|)·log(|B|/|Bj|) with |B|=8, |B1|=3, |B3|=5.
	ecbs := edgeSet(exampleGraph(t, ECBS).ForEachEdge)
	want := 2 * math.Log(8.0/3) * math.Log(8.0/5)
	if math.Abs(ecbs[p13]-want) > 1e-12 {
		t.Errorf("ECBS(p1,p3) = %v, want %v", ecbs[p13], want)
	}

	// EJS: JS·log(|VB|/|vi|)·log(|VB|/|vj|) with |VB|=6, deg(v1)=2,
	// deg(v3)=5.
	ejs := edgeSet(exampleGraph(t, EJS).ForEachEdge)
	want = (2.0 / 6) * math.Log(6.0/2) * math.Log(6.0/5)
	if math.Abs(ejs[p13]-want) > 1e-12 {
		t.Errorf("EJS(p1,p3) = %v, want %v", ejs[p13], want)
	}
}

func TestGraphOrderAndSize(t *testing.T) {
	g := exampleGraph(t, JS)
	if g.NumNodes() != 6 {
		t.Errorf("|VB| = %d, want 6", g.NumNodes())
	}
	if g.NumEdges() != 10 {
		t.Errorf("|EB| = %d, want 10", g.NumEdges())
	}
	if g.Scheme() != JS {
		t.Errorf("Scheme = %v", g.Scheme())
	}
}

// TestForEachNodeVisitsEveryEdgeTwice checks the node-centric traversal
// sees each edge from both endpoints with equal weights.
func TestForEachNodeVisitsEveryEdgeTwice(t *testing.T) {
	g := exampleGraph(t, JS)
	counts := make(map[entity.Pair]int)
	weights := make(map[entity.Pair][]float64)
	g.ForEachNode(func(i entity.ID, neighbors []entity.ID, ws []float64) {
		for n, j := range neighbors {
			p := entity.MakePair(i, j)
			counts[p]++
			weights[p] = append(weights[p], ws[n])
		}
	})
	if len(counts) != 10 {
		t.Fatalf("distinct edges = %d, want 10", len(counts))
	}
	for p, n := range counts {
		if n != 2 {
			t.Errorf("edge %v visited %d times, want 2", p, n)
		}
		ws := weights[p]
		if len(ws) == 2 && math.Abs(ws[0]-ws[1]) > 1e-12 {
			t.Errorf("edge %v weights differ across endpoints: %v", p, ws)
		}
	}
}

// TestOptimizedMatchesOriginal is the key equivalence property (paper
// §4.2): Algorithms 2 and 3 must produce identical edge sets and weights,
// for every scheme, on random Dirty and Clean-Clean collections.
func TestOptimizedMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		collections := []*block.Collection{
			randomDirtyBlocks(rng, 40, 30),
			randomCleanBlocks(rng, 15, 40, 30),
		}
		for _, c := range collections {
			for _, scheme := range AllSchemes {
				g := NewGraph(c, scheme)
				opt := edgeSet(g.ForEachEdge)
				orig := edgeSet(g.ForEachEdgeOriginal)
				if len(opt) != len(orig) {
					t.Fatalf("trial %d %v %v: %d vs %d edges",
						trial, c.Task, scheme, len(opt), len(orig))
				}
				for p, w := range opt {
					ow, ok := orig[p]
					if !ok {
						t.Fatalf("trial %d %v %v: edge %v only in optimized", trial, c.Task, scheme, p)
					}
					if math.Abs(w-ow) > 1e-9 {
						t.Fatalf("trial %d %v %v: edge %v weight %v vs %v",
							trial, c.Task, scheme, p, w, ow)
					}
				}
			}
		}
	}
}

// TestNodeTraversalsAgree checks ForEachNode and ForEachNodeOriginal yield
// the same neighborhoods and weights.
func TestNodeTraversalsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomDirtyBlocks(rng, 30, 25)
	for _, scheme := range AllSchemes {
		g := NewGraph(c, scheme)
		type hood map[entity.ID]float64
		collect := func(traverse func(func(entity.ID, []entity.ID, []float64))) map[entity.ID]hood {
			out := make(map[entity.ID]hood)
			traverse(func(i entity.ID, neighbors []entity.ID, ws []float64) {
				h := make(hood, len(neighbors))
				for n, j := range neighbors {
					h[j] = ws[n]
				}
				out[i] = h
			})
			return out
		}
		opt := collect(g.ForEachNode)
		orig := collect(g.ForEachNodeOriginal)
		if len(opt) != len(orig) {
			t.Fatalf("%v: node counts differ: %d vs %d", scheme, len(opt), len(orig))
		}
		for i, h := range opt {
			oh := orig[i]
			if len(h) != len(oh) {
				t.Fatalf("%v node %d: neighborhood sizes differ", scheme, i)
			}
			for j, w := range h {
				if math.Abs(w-oh[j]) > 1e-9 {
					t.Fatalf("%v edge %d-%d: %v vs %v", scheme, i, j, w, oh[j])
				}
			}
		}
	}
}

// TestCleanCleanGraphCrossesSplitOnly ensures no intra-source edges exist.
func TestCleanCleanGraphCrossesSplitOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCleanBlocks(rng, 10, 30, 20)
	g := NewGraph(c, CBS)
	g.ForEachEdge(func(i, j entity.ID, _ float64) {
		if c.InFirst(i) == c.InFirst(j) {
			t.Fatalf("edge %d-%d does not cross the split", i, j)
		}
	})
}

// --- random collection helpers ---

func randomDirtyBlocks(rng *rand.Rand, numEntities, numBlocks int) *block.Collection {
	c := &block.Collection{Task: entity.Dirty, NumEntities: numEntities, Split: numEntities}
	for b := 0; b < numBlocks; b++ {
		members := sampleIDs(rng, 0, numEntities, 2+rng.Intn(5))
		c.Blocks = append(c.Blocks, block.Block{Key: key(b), E1: members})
	}
	return c
}

func randomCleanBlocks(rng *rand.Rand, split, numEntities, numBlocks int) *block.Collection {
	c := &block.Collection{Task: entity.CleanClean, NumEntities: numEntities, Split: split}
	for b := 0; b < numBlocks; b++ {
		e1 := sampleIDs(rng, 0, split, 1+rng.Intn(3))
		e2 := sampleIDs(rng, split, numEntities, 1+rng.Intn(3))
		c.Blocks = append(c.Blocks, block.Block{Key: key(b), E1: e1, E2: e2})
	}
	return c
}

func sampleIDs(rng *rand.Rand, lo, hi, n int) []entity.ID {
	seen := make(map[entity.ID]struct{})
	var out []entity.ID
	for len(out) < n && len(out) < hi-lo {
		id := entity.ID(lo + rng.Intn(hi-lo))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func key(b int) string { return "k" + string(rune('0'+b%10)) + string(rune('a'+b/10)) }

// datagenD1C returns a small Clean-Clean synthetic dataset for
// integration-style core tests.
func datagenD1C() datagen.Dataset { return datagen.D1C(0.05) }
