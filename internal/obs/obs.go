// Package obs is the observability and cancellation layer of the
// pipeline. It provides three pieces, all optional and all zero-cost when
// absent:
//
//   - Metrics, a lightweight registry of named atomic counters and gauges
//     that every pipeline stage reports into. Counters are deterministic:
//     for a given pipeline configuration and input they hold the same
//     values for every worker count and whether or not callbacks are
//     installed. Gauges are informational (resolved worker counts) and
//     carry no such guarantee.
//   - Observer, the per-run handle threaded through the stages. It carries
//     the run's context (for cooperative cancellation), the metrics
//     registry, an optional progress callback and optional stage-span
//     hooks. Every method is safe on a nil *Observer, so un-observed
//     entry points simply pass nil.
//   - Meter, a stage-scoped progress accumulator that the sharded
//     parallel loops tick from multiple goroutines.
//
// The hot loops poll cancellation and tick progress once per stride of
// iterations (Stride), never per item, so the observed and un-observed
// paths produce bit-identical results at indistinguishable cost.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names, as reported to progress callbacks and span hooks.
const (
	StageBlocking = "blocking"
	StagePurge    = "purge"
	StageFilter   = "filter"
	StageGraph    = "graph"
	StagePrune    = "prune"
)

// Counter names reported by the pipeline. All of them are deterministic
// for a given configuration and input, independent of worker count.
const (
	// CtrBlockingBlocks / CtrBlockingComparisons describe the raw block
	// collection produced by the blocking method.
	CtrBlockingBlocks      = "blocking.blocks"
	CtrBlockingComparisons = "blocking.comparisons"
	// CtrPurgeBlocks / CtrPurgeComparisons describe the collection after
	// Block Purging (equal to the raw counts when purging is disabled).
	CtrPurgeBlocks      = "purge.blocks"
	CtrPurgeComparisons = "purge.comparisons"
	// CtrFilterBlocks / CtrFilterComparisons describe the meta-blocking
	// input after Block Filtering — they always match Result.InputBlocks
	// and Result.InputComparisons.
	CtrFilterBlocks      = "filter.blocks"
	CtrFilterComparisons = "filter.comparisons"
	// CtrGraphNodes is |VB|, the blocking graph's order.
	CtrGraphNodes = "graph.nodes"
	// CtrEdgesWeighted counts edge-weight evaluations during pruning,
	// from the canonical traversal direction: one per edge per
	// weighting pass (serial and parallel pruning run the same passes,
	// so the count is worker-independent).
	CtrEdgesWeighted = "prune.edges_weighted"
	// CtrPairsRetained is the number of retained comparisons.
	CtrPairsRetained = "prune.pairs"
)

// Gauge names reported by the pipeline: the resolved worker count of each
// parallel stage. Gauges depend on the Workers knob and the host, and are
// therefore excluded from the determinism guarantee of the counters.
const (
	GaugeWorkersBlocking = "workers.blocking"
	GaugeWorkersFilter   = "workers.filter"
	GaugeWorkersGraph    = "workers.graph"
	GaugeWorkersPrune    = "workers.prune"
)

// Stride is how many hot-loop iterations pass between cancellation polls
// and progress ticks. It must be a power of two.
const Stride = 1 << 10

// StrideMask masks an iteration index down to its position in the stride.
const StrideMask = Stride - 1

// ProgressFunc receives progress updates for a stage: done work units out
// of total. Callbacks may be invoked concurrently from multiple worker
// goroutines and must be safe for concurrent use.
type ProgressFunc func(stage string, done, total int64)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe on a nil *Counter (no-ops), which is
// what a nil registry hands out.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value gauge. Like Counter, all methods are safe
// on a nil *Gauge.
type Gauge struct{ v atomic.Int64 }

// Set records the latest value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the latest value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Text is an atomic last-value string — the registry's instrument for
// things a number cannot carry, like the most recent error a failure path
// observed. Like Counter and Gauge, all methods are safe on a nil *Text.
type Text struct{ v atomic.Value }

// Set records the latest value.
func (t *Text) Set(s string) {
	if t != nil {
		t.v.Store(s)
	}
}

// Value returns the latest value ("" for a nil or unset text).
func (t *Text) Value() string {
	if t == nil {
		return ""
	}
	s, _ := t.v.Load().(string)
	return s
}

// Metrics is a registry of named counters, gauges and texts, safe for
// concurrent use. Stages look their instruments up once per stage
// (Counter/Gauge/Text take a lock) and then update them with lock-free
// atomics.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	texts    map[string]*Text
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		texts:    make(map[string]*Text),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, whose methods are no-ops.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil gauge, whose methods are no-ops.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Text returns the named text, creating it on first use. A nil registry
// returns a nil text, whose methods are no-ops.
func (m *Metrics) Text(name string) *Text {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.texts[name]
	if t == nil {
		t = &Text{}
		if m.texts == nil {
			m.texts = make(map[string]*Text)
		}
		m.texts[name] = t
	}
	return t
}

// Snapshot returns an immutable copy of every instrument's current value.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}, Texts: map[string]string{}}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range m.texts {
		s.Texts[name] = t.Value()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, attached to Result.
type Snapshot struct {
	// Counters holds the deterministic per-stage counters.
	Counters map[string]int64
	// Gauges holds the informational gauges (resolved worker counts).
	Gauges map[string]int64
	// Texts holds the string instruments (e.g. last observed errors).
	// Omitted from JSON when no text was ever set.
	Texts map[string]string `json:",omitempty"`
}

// Counter returns a counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Text returns a text's value ("" when absent).
func (s Snapshot) Text(name string) string { return s.Texts[name] }

// Table formats the snapshot as an aligned two-column table, counters
// first, then gauges, each sorted by name.
func (s Snapshot) Table() string {
	var b strings.Builder
	width := 0
	for name := range s.Counters {
		width = max(width, len(name))
	}
	for name := range s.Gauges {
		width = max(width, len(name))
	}
	for name := range s.Texts {
		width = max(width, len(name))
	}
	section := func(title string, vals map[string]int64) {
		if len(vals) == 0 {
			return
		}
		names := make([]string, 0, len(vals))
		for name := range vals {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%s\n", title)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-*s %d\n", width, name, vals[name])
		}
	}
	section("counters", s.Counters)
	section("gauges", s.Gauges)
	if len(s.Texts) > 0 {
		names := make([]string, 0, len(s.Texts))
		for name := range s.Texts {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "texts\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-*s %q\n", width, name, s.Texts[name])
		}
	}
	return b.String()
}

// Observer is the per-run observability handle: context cancellation,
// metrics, progress and span hooks. A nil *Observer is valid everywhere
// and turns every operation into a no-op.
type Observer struct {
	ctx       context.Context
	done      <-chan struct{}
	metrics   *Metrics
	progress  ProgressFunc
	spanStart func(stage string)
	spanEnd   func(stage string, elapsed time.Duration)
}

// Option customizes an Observer.
type Option func(*Observer)

// WithMetrics attaches a metrics registry.
func WithMetrics(m *Metrics) Option {
	return func(o *Observer) { o.metrics = m }
}

// WithProgress attaches a progress callback. The callback may be invoked
// concurrently from multiple worker goroutines.
func WithProgress(fn ProgressFunc) Option {
	return func(o *Observer) { o.progress = fn }
}

// WithSpanHooks attaches stage-span hooks: start fires when a stage
// begins, end when it completes, with the elapsed wall-clock time. Either
// may be nil.
func WithSpanHooks(start func(stage string), end func(stage string, elapsed time.Duration)) Option {
	return func(o *Observer) { o.spanStart, o.spanEnd = start, end }
}

// New builds an Observer bound to ctx. A nil ctx means no cancellation.
func New(ctx context.Context, opts ...Option) *Observer {
	o := &Observer{ctx: ctx}
	if ctx != nil {
		o.done = ctx.Done()
	}
	for _, opt := range opts {
		if opt != nil {
			opt(o)
		}
	}
	return o
}

// Canceled reports whether the run's context has been canceled. It is the
// poll the hot loops issue once per Stride iterations; on a nil Observer
// (or one without a context) it is a single branch.
func (o *Observer) Canceled() bool {
	if o == nil || o.done == nil {
		return false
	}
	select {
	case <-o.done:
		return true
	default:
		return false
	}
}

// Err returns the context's error (context.Canceled, DeadlineExceeded) or
// nil. Stage drivers call it at stage boundaries to decide whether to
// abort the run.
func (o *Observer) Err() error {
	if o == nil || o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

// Metrics returns the attached registry (possibly nil).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Counter returns a named counter from the attached registry; safe (and a
// no-op sink) on a nil Observer or registry.
func (o *Observer) Counter(name string) *Counter { return o.Metrics().Counter(name) }

// Gauge returns a named gauge from the attached registry; safe on a nil
// Observer or registry.
func (o *Observer) Gauge(name string) *Gauge { return o.Metrics().Gauge(name) }

// Snapshot returns the attached registry's current state, or a zero
// Snapshot (nil maps) when the Observer has no registry — so callers can
// distinguish "no metrics requested" from "all counters zero".
func (o *Observer) Snapshot() Snapshot {
	if m := o.Metrics(); m != nil {
		return m.Snapshot()
	}
	return Snapshot{}
}

// StartSpan fires the stage-start hook and returns a function that fires
// the stage-end hook with the elapsed time. Always returns a callable.
func (o *Observer) StartSpan(stage string) func() {
	if o == nil || (o.spanStart == nil && o.spanEnd == nil) {
		return func() {}
	}
	if o.spanStart != nil {
		o.spanStart(stage)
	}
	end := o.spanEnd
	if end == nil {
		return func() {}
	}
	start := time.Now()
	return func() { end(stage, time.Since(start)) }
}

// NewMeter returns a progress meter for one stage, or nil when no
// progress callback is installed — a nil *Meter makes Add a no-op, so hot
// loops tick unconditionally.
func (o *Observer) NewMeter(stage string, total int64) *Meter {
	if o == nil || o.progress == nil {
		return nil
	}
	return &Meter{o: o, stage: stage, total: total}
}

// Meter accumulates done work units for one stage and forwards each batch
// to the progress callback. Safe for concurrent use.
type Meter struct {
	o     *Observer
	stage string
	total int64
	done  atomic.Int64
}

// Add records n completed work units and fires the progress callback.
func (m *Meter) Add(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.o.progress(m.stage, m.done.Add(n), m.total)
}
