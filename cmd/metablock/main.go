// Command metablock runs the full Enhanced Meta-blocking pipeline on a CSV
// entity collection (or a built-in synthetic dataset) and writes the
// retained comparisons — or, with a matcher threshold, the matched pairs.
//
// Input CSV format (header required): id,source,attribute,value
//   - id: a non-negative integer per profile (rows with the same id build
//     one profile)
//   - source: 1 or 2; if any row has source 2 the task is Clean-Clean ER,
//     otherwise Dirty ER
//
// Ground truth CSV (optional, -truth): id1,id2 per line (no header).
//
// Examples:
//
//	metablock -dataset D2C -scale 0.2 -algorithm reciprocal-wnp
//	metablock -input profiles.csv -truth matches.csv -filter 0.8 -scheme ecbs
//	metablock -input profiles.csv -match 0.4 -output matches.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	mb "metablocking"
	"metablocking/internal/dataio"
	"metablocking/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metablock:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input     = flag.String("input", "", "input profiles CSV (id,source,attribute,value)")
		truth     = flag.String("truth", "", "ground truth CSV (id1,id2) for evaluation")
		dataset   = flag.String("dataset", "", "built-in synthetic dataset instead of -input (D1C..D3D)")
		scale     = flag.Float64("scale", 0.2, "scale for -dataset")
		blockFlag = flag.String("blocking", "token", "blocking method: token, qgrams, suffix, attrcluster, minhash, eqgrams, esn")
		workers   = flag.Int("workers", -1, "worker goroutines for every pipeline stage (-1 = all CPUs, 0 = serial)")
		scheme    = flag.String("scheme", "js", "weighting scheme: arcs, cbs, ecbs, js, ejs")
		algorithm = flag.String("algorithm", "reciprocal-wnp", "pruning: cep, cnp, wep, wnp, redefined-cnp, reciprocal-cnp, redefined-wnp, reciprocal-wnp")
		filter    = flag.Float64("filter", 0.8, "Block Filtering ratio r (0 disables)")
		graphFree = flag.Bool("graphfree", false, "skip the blocking graph (Block Filtering + Comparison Propagation)")
		compress  = flag.Bool("compressed", false, "compressed Entity Index (delta+varint/bitmap posting lists); identical output, smaller resident index")
		match     = flag.Float64("match", 0, "Jaccard matching threshold; 0 outputs raw comparisons")
		output    = flag.String("output", "", "output CSV path (default stdout)")
		saveBlk   = flag.String("save-blocks", "", "persist the cleaned block collection to this file")
		metrics   = flag.Bool("metrics", false, "print the per-stage counter/gauge table to stderr")
		pprofAddr = flag.String("pprof", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
		progress  = flag.Bool("progress", false, "stream per-stage progress to stderr")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) cancels the pipeline cooperatively: every stage
	// drains its workers and RunContext returns context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	collection, gt, err := loadInput(*input, *truth, *dataset, *scale)
	if err != nil {
		return err
	}

	blocking, err := parseBlocking(*blockFlag)
	if err != nil {
		return err
	}
	sch, err := parseScheme(*scheme)
	if err != nil {
		return err
	}
	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		return err
	}

	var opts []mb.RunOption
	if *metrics || *pprofAddr != "" {
		reg := mb.NewMetrics()
		opts = append(opts, mb.WithMetrics(reg))
		if *pprofAddr != "" {
			srv, err := obs.ServeDebug(*pprofAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", *pprofAddr)
		}
	}
	if *progress {
		opts = append(opts, mb.WithProgress(progressPrinter(os.Stderr)))
	}

	p := mb.Pipeline{
		Blocking:        blocking,
		FilterRatio:     *filter,
		GraphFree:       *graphFree,
		CompressedIndex: *compress,
		Scheme:          sch,
		Algorithm:       alg,
		Workers:         *workers,
	}
	res, err := p.RunContext(ctx, collection, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "profiles: %d  input comparisons: %d  retained: %d  overhead: %v\n",
		collection.Size(), res.InputComparisons, len(res.Pairs), res.OTime)
	fmt.Fprintf(os.Stderr, "stages: blocking=%v filtering=%v graph=%v pruning=%v\n",
		res.Stages.Blocking, res.Stages.Filtering, res.Stages.Graph, res.Stages.Prune)
	if *metrics {
		fmt.Fprint(os.Stderr, metricsReport(res))
	}

	if *saveBlk != "" {
		cleaned := mb.BuildBlocks(collection, blocking, *filter)
		if err := mb.SaveBlocks(*saveBlk, cleaned); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved %d blocks to %s\n", cleaned.Len(), *saveBlk)
	}

	pairs := res.Pairs
	if *match > 0 {
		m := mb.NewJaccardMatcher(collection, *match)
		pairs = mb.Matches(m, pairs)
		fmt.Fprintf(os.Stderr, "matches at threshold %.2f: %d\n", *match, len(pairs))
	}

	if gt != nil {
		rep := mb.Evaluate(res.Pairs, gt, res.InputComparisons)
		fmt.Fprintf(os.Stderr, "evaluation: PC=%.3f PQ=%.4f RR=%.3f\n", rep.PC(), rep.PQ(), rep.RR())
	}

	return writePairs(*output, pairs)
}

// metricsReport renders the run's counter/gauge snapshot for -metrics.
func metricsReport(res *mb.Result) string {
	return res.Metrics.Table()
}

// progressPrinter returns a ProgressFunc that streams per-stage progress
// lines to w, throttled to one line per stage per 200ms (the final
// done==total line is always printed). The callback is invoked
// concurrently from worker goroutines, hence the lock.
func progressPrinter(w io.Writer) mb.ProgressFunc {
	var mu sync.Mutex
	latest := make(map[string]int64)
	last := make(map[string]time.Time)
	return func(stage string, done, total int64) {
		mu.Lock()
		defer mu.Unlock()
		if done < latest[stage] {
			return // a lagging worker's tick arrived out of order
		}
		latest[stage] = done
		now := time.Now()
		if done < total && now.Sub(last[stage]) < 200*time.Millisecond {
			return
		}
		last[stage] = now
		fmt.Fprintf(w, "%s: %d/%d\n", stage, done, total)
	}
}

func loadInput(input, truth, dataset string, scale float64) (*mb.Collection, *mb.GroundTruth, error) {
	switch {
	case input != "" && dataset != "":
		return nil, nil, fmt.Errorf("-input and -dataset are mutually exclusive")
	case dataset != "":
		id, err := parseDataset(dataset)
		if err != nil {
			return nil, nil, err
		}
		ds := mb.GenerateDataset(id, scale)
		return ds.Collection, ds.GroundTruth, nil
	case input != "":
		c, err := readProfiles(input)
		if err != nil {
			return nil, nil, err
		}
		var gt *mb.GroundTruth
		if truth != "" {
			gt, err = readTruth(truth)
			if err != nil {
				return nil, nil, err
			}
		}
		return c, gt, nil
	default:
		return nil, nil, fmt.Errorf("either -input or -dataset is required")
	}
}

// readProfiles parses the input file: JSONL when the extension is .jsonl
// or .ndjson, the id,source,attribute,value CSV otherwise.
func readProfiles(path string) (*mb.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ext := strings.ToLower(filepath.Ext(path))
	if ext == ".jsonl" || ext == ".ndjson" {
		return dataio.ReadProfilesJSONL(f)
	}
	return dataio.ReadProfilesCSV(f)
}

func readTruth(path string) (*mb.GroundTruth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataio.ReadGroundTruthCSV(f)
}

func writePairs(path string, pairs []mb.Pair) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataio.WritePairsCSV(w, pairs)
}

func parseDataset(s string) (mb.DatasetID, error) {
	switch strings.ToUpper(s) {
	case "D1C":
		return mb.D1C, nil
	case "D2C":
		return mb.D2C, nil
	case "D3C":
		return mb.D3C, nil
	case "D1D":
		return mb.D1D, nil
	case "D2D":
		return mb.D2D, nil
	case "D3D":
		return mb.D3D, nil
	default:
		return 0, fmt.Errorf("unknown dataset %q (want D1C..D3D)", s)
	}
}

func parseBlocking(s string) (mb.BlockingMethod, error) {
	switch strings.ToLower(s) {
	case "token":
		return mb.TokenBlocking{}, nil
	case "qgrams":
		return mb.QGramsBlocking{}, nil
	case "suffix":
		return mb.SuffixArrayBlocking{}, nil
	case "attrcluster":
		return mb.AttributeClusteringBlocking{}, nil
	case "minhash":
		return mb.MinHashBlocking{}, nil
	case "eqgrams":
		return mb.ExtendedQGramsBlocking{}, nil
	case "esn":
		return mb.ExtendedSortedNeighborhood{}, nil
	default:
		return nil, fmt.Errorf("unknown blocking method %q", s)
	}
}

func parseScheme(s string) (mb.Scheme, error) {
	switch strings.ToLower(s) {
	case "arcs":
		return mb.ARCS, nil
	case "cbs":
		return mb.CBS, nil
	case "ecbs":
		return mb.ECBS, nil
	case "js":
		return mb.JS, nil
	case "ejs":
		return mb.EJS, nil
	default:
		return 0, fmt.Errorf("unknown weighting scheme %q", s)
	}
}

func parseAlgorithm(s string) (mb.Algorithm, error) {
	switch strings.ToLower(s) {
	case "cep":
		return mb.CEP, nil
	case "cnp":
		return mb.CNP, nil
	case "wep":
		return mb.WEP, nil
	case "wnp":
		return mb.WNP, nil
	case "redefined-cnp":
		return mb.RedefinedCNP, nil
	case "reciprocal-cnp":
		return mb.ReciprocalCNP, nil
	case "redefined-wnp":
		return mb.RedefinedWNP, nil
	case "reciprocal-wnp":
		return mb.ReciprocalWNP, nil
	default:
		return 0, fmt.Errorf("unknown pruning algorithm %q", s)
	}
}
