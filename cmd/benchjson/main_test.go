package main

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestGateLogic(t *testing.T) {
	base := File{Schema: 1, Benchmarks: map[string]Bench{
		"a":   {NsPerOp: 1000, AllocsPerOp: 100},
		"b":   {NsPerOp: 500, AllocsPerOp: 10, AllocTolerance: 0.5, NsTolerance: 0.5},
		"lat": {P50Ns: 100, P99Ns: 200},
	}}
	pass := File{Schema: 1, Benchmarks: map[string]Bench{
		"a":   {NsPerOp: 5000, AllocsPerOp: 105}, // ns not gated without -ns
		"b":   {NsPerOp: 700, AllocsPerOp: 14},   // within the 50% override
		"lat": {P50Ns: 1000, P99Ns: 2000},
	}}
	if !gate(base, pass, 0.10, false) {
		t.Error("within-tolerance run must pass without -ns")
	}
	if gate(base, pass, 0.10, true) {
		t.Error("5x ns regression must fail with -ns")
	}
	allocFail := File{Schema: 1, Benchmarks: map[string]Bench{
		"a":   {NsPerOp: 1000, AllocsPerOp: 120}, // +20% > 10% default
		"b":   {NsPerOp: 500, AllocsPerOp: 10},
		"lat": {},
	}}
	if gate(base, allocFail, 0.10, false) {
		t.Error("allocs/op beyond tolerance must fail even without -ns")
	}
	missing := File{Schema: 1, Benchmarks: map[string]Bench{"a": {NsPerOp: 1, AllocsPerOp: 1}}}
	if gate(base, missing, 10.0, false) {
		t.Error("a benchmark missing from the current run must fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := File{Schema: 1, PR: 6, Go: "go-test", Benchmarks: map[string]Bench{
		"x": {NsPerOp: 1.5, BytesPerOp: 2, AllocsPerOp: 3, P50Ns: 4, P99Ns: 5,
			ProfilesPerBatch: 6.5, ComparisonsPerMs: 7.5, AllocTolerance: 0.1, NsTolerance: 0.2},
	}}
	writeJSON(path, want)
	got := readJSON(path)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestEmitGateLive runs the real headline benchmarks once (testing.Benchmark
// self-scales, a few seconds total) and gates the result against itself —
// the always-green self-consistency case that also smoke-tests the bench
// harness end to end.
func TestEmitGateLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmarks take a few seconds")
	}
	cur := File{Schema: 1, Benchmarks: runAll()}
	// Latency-style rows report percentiles instead of ns/op.
	percentileRows := map[string]bool{"server_latency": true, "resolve_budget_interactive": true}
	for name, b := range cur.Benchmarks {
		if !percentileRows[name] && b.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", name, b.NsPerOp)
		}
	}
	if lat := cur.Benchmarks["server_latency"]; lat.P50Ns <= 0 || lat.P99Ns < lat.P50Ns {
		t.Errorf("latency percentiles implausible: %+v", lat)
	}
	if bs := cur.Benchmarks["resolve_budget_interactive"]; bs.P50Ns <= 0 || bs.P99Ns < bs.P50Ns || bs.ComparisonsPerMs <= 0 {
		t.Errorf("budget stream row implausible: %+v", bs)
	}
	if !gate(cur, cur, 0.10, true) {
		t.Error("a run gated against itself must pass")
	}
}
