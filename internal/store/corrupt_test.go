package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
)

// classified asserts an error wraps one of the two artifact sentinels.
func classified(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: accepted", what)
	}
	if !errors.Is(err, ErrCorruptArtifact) && !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("%s: error %v wraps neither ErrCorruptArtifact nor ErrVersionMismatch", what, err)
	}
}

func saveGood(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "resolver.snap")
	if err := SaveResolverFile(path, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// TestContainerFraming: the atomic save wraps the artifact in the
// checksummed container, and a verified load round-trips it.
func TestContainerFraming(t *testing.T) {
	path, raw := saveGood(t)
	if !bytes.Equal(raw[:4], headMagic[:]) {
		t.Fatalf("file does not start with container magic: % x", raw[:4])
	}
	if !bytes.Equal(raw[len(raw)-4:], footMagic[:]) {
		t.Fatalf("file does not end with footer magic: % x", raw[len(raw)-4:])
	}
	got, err := LoadResolverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, testSnapshot(t)) {
		t.Fatal("container round trip differs")
	}
}

// TestBitFlipAlwaysDetected flips single bits across the artifact — header,
// payload and footer — and every flip must be classified, never yield a
// partial resolver.
func TestBitFlipAlwaysDetected(t *testing.T) {
	path, raw := saveGood(t)
	step := len(raw) / 64
	if step < 1 {
		step = 1
	}
	for off := 0; off < len(raw); off += step {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if snap, err := LoadResolverFile(path); err == nil {
			t.Fatalf("bit flip at offset %d accepted (snapshot %v)", off, snap != nil)
		} else {
			classified(t, err, "bit flip")
		}
	}
}

// TestTruncationAtEveryFooterBoundary cuts the file at every byte of the
// footer and at the header/payload boundaries; all must load as corrupt.
func TestTruncationAtEveryFooterBoundary(t *testing.T) {
	path, raw := saveGood(t)
	cuts := []int{0, 1, headerSize - 1, headerSize, headerSize + 1, len(raw) / 2}
	for n := len(raw) - footerSize - 1; n < len(raw); n++ {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadResolverFile(path)
		classified(t, err, "truncation")
	}
}

// TestVersionMismatchClassified covers both version fences: the container
// version byte and the per-kind gob envelope version.
func TestVersionMismatchClassified(t *testing.T) {
	path, raw := saveGood(t)
	bad := append([]byte(nil), raw...)
	bad[4]++ // container version (little-endian low byte)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResolverFile(path); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("container version bump: %v, want ErrVersionMismatch", err)
	}

	// A future artifact version inside a valid container.
	future := filepath.Join(t.TempDir(), "future.snap")
	err := saveFileAtomic(future, func(w io.Writer) error {
		return writeArtifact(w, "resolver", resolverVersion+1, storedResolver{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResolverFile(future); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future artifact version: %v, want ErrVersionMismatch", err)
	}
}

// TestWrongKindClassified: a pairs artifact at a resolver path is corrupt,
// not a partial resolver.
func TestWrongKindClassified(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pairs-as-resolver.snap")
	err := saveFileAtomic(path, func(w io.Writer) error {
		return WritePairs(w, []entity.Pair{{A: 1, B: 2}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResolverFile(path); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("wrong kind: %v, want ErrCorruptArtifact", err)
	}
}

// TestLegacyRawGobStillLoads: artifacts written before the container
// format (bare gob via os.Create) stay loadable.
func TestLegacyRawGobStillLoads(t *testing.T) {
	want := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "legacy.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteResolver(f, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResolverFile(path)
	if err != nil {
		t.Fatalf("legacy artifact rejected: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("legacy round trip differs")
	}
}

// TestAtomicSaveSurvivesInjectedFaults arms each save-path fault site in
// turn; the failed save must leave the previous good artifact untouched at
// the final path and no temp debris behind.
func TestAtomicSaveSurvivesInjectedFaults(t *testing.T) {
	want := testSnapshot(t)
	for _, site := range []string{FaultSaveCreate, FaultSaveWrite, FaultSaveSync, FaultSaveRename} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "resolver.snap")
			if err := SaveResolverFile(path, want); err != nil {
				t.Fatal(err)
			}

			in := fault.New(1)
			in.Arm(site, fault.Spec{Times: 1})
			if site == FaultSaveWrite {
				in.Arm(site, fault.Spec{ShortWrite: 7, Times: 1})
			}
			SetInjector(in)
			defer SetInjector(nil)

			// Overwrite attempt fails at the armed site...
			err := SaveResolverFile(path, testSnapshotDoubled(t))
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("save with %s armed: %v, want injected failure", site, err)
			}
			// ...but the final path still holds the previous good artifact.
			got, err := LoadResolverFile(path)
			if err != nil {
				t.Fatalf("previous artifact lost: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("previous artifact mutated by failed save")
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.Contains(e.Name(), ".tmp-") {
					t.Fatalf("temp debris left behind: %s", e.Name())
				}
			}
		})
	}
}

// testSnapshotDoubled returns a snapshot distinguishable from testSnapshot.
func testSnapshotDoubled(t *testing.T) *incremental.Snapshot {
	t.Helper()
	s := testSnapshot(t)
	s.Profiles = append(s.Profiles, s.Profiles...)
	return s
}

// TestInjectedLoadFault: the read-side site surfaces as a plain error so
// the serving layer's corrupt-load counter can observe it.
func TestInjectedLoadFault(t *testing.T) {
	path, _ := saveGood(t)
	in := fault.New(1)
	in.Arm(FaultLoadRead, fault.Spec{Times: 1})
	SetInjector(in)
	defer SetInjector(nil)
	if _, err := LoadResolverFile(path); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("armed load = %v, want injected", err)
	}
	if _, err := LoadResolverFile(path); err != nil {
		t.Fatalf("after budget: %v", err)
	}
}
