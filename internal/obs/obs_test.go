package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Canceled() {
		t.Error("nil observer reports canceled")
	}
	if o.Err() != nil {
		t.Error("nil observer reports an error")
	}
	o.Counter("x").Add(5) // must not panic
	o.Gauge("x").Set(5)
	o.NewMeter("stage", 10).Add(3)
	o.StartSpan("stage")()
	if v := o.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if s := o.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}

	var m *Metrics
	m.Counter("x").Inc()
	m.Gauge("x").Set(1)
	m.Text("x").Set("boom")
	if v := m.Text("x").Value(); v != "" {
		t.Errorf("nil text value = %q", v)
	}
	if s := m.Snapshot(); len(s.Counters) != 0 || len(s.Texts) != 0 {
		t.Errorf("nil metrics snapshot not empty: %+v", s)
	}
}

func TestTextInstrument(t *testing.T) {
	m := NewMetrics()
	if v := m.Text("server.last_error").Value(); v != "" {
		t.Errorf("unset text = %q", v)
	}
	m.Text("server.last_error").Set("resolve: boom")
	m.Text("server.last_error").Set("resolve: kapow") // last value wins
	s := m.Snapshot()
	if got := s.Text("server.last_error"); got != "resolve: kapow" {
		t.Errorf("text = %q", got)
	}
	if got := s.Text("absent"); got != "" {
		t.Errorf("absent text = %q", got)
	}
	table := s.Table()
	for _, want := range []string{"texts", "server.last_error", "resolve: kapow"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("stage.items")
	c.Add(40)
	c.Inc()
	m.Counter("stage.items").Inc() // same instrument on re-lookup
	m.Gauge("workers").Set(7)
	m.Gauge("workers").Set(3)

	s := m.Snapshot()
	if got := s.Counter("stage.items"); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if got := s.Gauge("workers"); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	if got := s.Counter("absent"); got != 0 {
		t.Errorf("absent counter = %d", got)
	}

	table := s.Table()
	for _, want := range []string{"counters", "stage.items", "42", "gauges", "workers", "3"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("c").Inc()
				m.Gauge("g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Snapshot().Counter("c"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestObserverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := New(ctx)
	if o.Canceled() {
		t.Error("canceled before cancel")
	}
	if o.Err() != nil {
		t.Errorf("err before cancel: %v", o.Err())
	}
	cancel()
	if !o.Canceled() {
		t.Error("not canceled after cancel")
	}
	if o.Err() != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", o.Err())
	}

	if New(nil).Canceled() {
		t.Error("nil-context observer reports canceled")
	}
}

func TestObserverProgressAndSpans(t *testing.T) {
	var mu sync.Mutex
	var stages []string
	var dones []int64
	var spans []string
	o := New(context.Background(),
		WithProgress(func(stage string, done, total int64) {
			mu.Lock()
			defer mu.Unlock()
			stages = append(stages, stage)
			dones = append(dones, done)
			if total != 100 {
				t.Errorf("total = %d, want 100", total)
			}
		}),
		WithSpanHooks(
			func(stage string) { spans = append(spans, "start:"+stage) },
			func(stage string, elapsed time.Duration) {
				if elapsed < 0 {
					t.Errorf("negative elapsed %v", elapsed)
				}
				spans = append(spans, "end:"+stage)
			},
		),
	)

	meter := o.NewMeter(StagePrune, 100)
	meter.Add(30)
	meter.Add(70)
	meter.Add(0) // no-op, must not fire
	if len(stages) != 2 || stages[0] != StagePrune || dones[1] != 100 {
		t.Errorf("progress calls = %v %v", stages, dones)
	}

	end := o.StartSpan(StageGraph)
	end()
	if len(spans) != 2 || spans[0] != "start:graph" || spans[1] != "end:graph" {
		t.Errorf("spans = %v", spans)
	}

	// Without a callback there is no meter at all.
	if New(context.Background()).NewMeter("x", 1) != nil {
		t.Error("meter allocated without progress callback")
	}
}

func TestServeDebug(t *testing.T) {
	m := NewMetrics()
	m.Counter("filter.comparisons").Add(123456)
	srv, err := ServeDebug("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "filter.comparisons") || !strings.Contains(body, "123456") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ missing goroutine profile link")
	}
}
