// Package progressive implements pay-as-you-go Entity Resolution on top of
// the blocking graph: comparisons are emitted in descending edge-weight
// order so that, under any comparison budget, the executed prefix contains
// the likeliest matches. The paper motivates exactly this application
// class ("Pay-as-you-go ER", §3) for its efficiency-intensive
// configurations; this package turns the weighted graph into the
// prioritized comparison stream such applications consume.
package progressive

import (
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// Comparison is one prioritized comparison.
type Comparison struct {
	Pair   entity.Pair
	Weight float64
}

// Scheduler materializes the weighted comparisons of a block collection
// and serves them heaviest-first.
type Scheduler struct {
	comparisons []Comparison
	next        int
}

// NewScheduler builds the schedule: one optimized traversal collects every
// distinct comparison with its weight, then a single descending sort fixes
// the emission order (ties break on the canonical pair, so schedules are
// deterministic).
func NewScheduler(c *block.Collection, scheme core.Scheme) *Scheduler {
	g := core.NewGraph(c, scheme)
	s := &Scheduler{}
	g.ForEachEdge(func(i, j entity.ID, w float64) {
		s.comparisons = append(s.comparisons, Comparison{Pair: entity.MakePair(i, j), Weight: w})
	})
	sort.Slice(s.comparisons, func(a, b int) bool {
		ca, cb := s.comparisons[a], s.comparisons[b]
		if ca.Weight != cb.Weight {
			return ca.Weight > cb.Weight
		}
		if ca.Pair.A != cb.Pair.A {
			return ca.Pair.A < cb.Pair.A
		}
		return ca.Pair.B < cb.Pair.B
	})
	return s
}

// Len returns the total number of scheduled comparisons.
func (s *Scheduler) Len() int { return len(s.comparisons) }

// Remaining returns how many comparisons have not been emitted yet.
func (s *Scheduler) Remaining() int { return len(s.comparisons) - s.next }

// Next returns the next-heaviest comparison, or ok=false when exhausted.
func (s *Scheduler) Next() (Comparison, bool) {
	if s.next >= len(s.comparisons) {
		return Comparison{}, false
	}
	c := s.comparisons[s.next]
	s.next++
	return c, true
}

// Take emits up to n comparisons (the next budget slice).
func (s *Scheduler) Take(n int) []Comparison {
	if n > s.Remaining() {
		n = s.Remaining()
	}
	out := s.comparisons[s.next : s.next+n]
	s.next += n
	return out
}

// Reset rewinds the schedule to the beginning.
func (s *Scheduler) Reset() { s.next = 0 }

// RecallCurvePoint is one point of a progressive-recall curve.
type RecallCurvePoint struct {
	Comparisons int
	Recall      float64
}

// RecallCurve executes the schedule against the ground truth and samples
// recall at the given comparison budgets (ascending). It is the evaluation
// used to compare progressive methods: a good schedule reaches high recall
// within a small budget prefix.
func RecallCurve(s *Scheduler, gt *entity.GroundTruth, budgets []int) []RecallCurvePoint {
	s.Reset()
	sorted := append([]int(nil), budgets...)
	sort.Ints(sorted)
	var out []RecallCurvePoint
	detected, executed := 0, 0
	for _, budget := range sorted {
		for executed < budget {
			c, ok := s.Next()
			if !ok {
				break
			}
			executed++
			if gt.Contains(c.Pair.A, c.Pair.B) {
				detected++
			}
		}
		out = append(out, RecallCurvePoint{
			Comparisons: executed,
			Recall:      float64(detected) / float64(gt.Size()),
		})
	}
	return out
}
