package loadgen

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

func someProfiles(n int) []entity.Profile {
	out := make([]entity.Profile, n)
	for i := range out {
		out[i].Add("name", fmt.Sprintf("profile %d", i))
	}
	return out
}

func TestRunClassifiesOutcomes(t *testing.T) {
	var calls atomic.Int64
	resolve := func(p entity.Profile) (incremental.BatchResult, error) {
		n := calls.Add(1)
		switch {
		case n%5 == 0:
			return incremental.BatchResult{}, ErrRejected
		case n%7 == 0:
			return incremental.BatchResult{}, errors.New("boom")
		default:
			return incremental.BatchResult{ID: entity.ID(n)}, nil
		}
	}
	rep := Run(resolve, someProfiles(10), Options{Clients: 4, Requests: 100})
	if got := len(rep.Responses) + rep.Rejected + len(rep.Errors); got != 100 {
		t.Fatalf("outcomes = %d, want 100", got)
	}
	if rep.Rejected == 0 || len(rep.Errors) == 0 || len(rep.Responses) == 0 {
		t.Fatalf("classification degenerate: %d ok, %d shed, %d errors",
			len(rep.Responses), rep.Rejected, len(rep.Errors))
	}
}

func TestHTTPResolverMapsStatuses(t *testing.T) {
	var mode atomic.Int32 // 0 = ok, 1 = shed, 2 = fail
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		switch mode.Load() {
		case 0:
			fmt.Fprint(w, `{"id": 3, "candidates": [{"id": 1, "weight": 0.5}]}`)
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			http.Error(w, "kaput", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	resolve := HTTPResolver(ts.URL, ts.Client())
	p := someProfiles(1)[0]

	res, err := resolve(p)
	if err != nil || res.ID != 3 || len(res.Candidates) != 1 || res.Candidates[0].Weight != 0.5 {
		t.Fatalf("ok mapping = %+v, %v", res, err)
	}
	mode.Store(1)
	if _, err := resolve(p); !errors.Is(err, ErrRejected) {
		t.Fatalf("429 mapped to %v, want ErrRejected", err)
	}
	mode.Store(2)
	if _, err := resolve(p); err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("500 mapped to %v, want a hard error", err)
	}
}
