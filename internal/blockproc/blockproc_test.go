package blockproc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func TestBlockPurgingDefaultRatio(t *testing.T) {
	c := &block.Collection{
		Task: entity.Dirty, NumEntities: 6, Split: 6,
		Blocks: []block.Block{
			{Key: "big", E1: []entity.ID{0, 1, 2, 3}}, // 4 > 6/2 → purged
			{Key: "ok", E1: []entity.ID{0, 1, 2}},     // 3 ≤ 3 → kept
			{Key: "small", E1: []entity.ID{4, 5}},
		},
	}
	out := BlockPurging{}.Apply(c)
	if out.Len() != 2 {
		t.Fatalf("|B| = %d, want 2", out.Len())
	}
	for i := range out.Blocks {
		if out.Blocks[i].Key == "big" {
			t.Fatal("oversized block survived purging")
		}
	}
	if out.Split != c.Split || out.NumEntities != c.NumEntities {
		t.Fatal("purging drops collection metadata")
	}
}

func TestBlockPurgingMaxComparisons(t *testing.T) {
	c := &block.Collection{
		Task: entity.Dirty, NumEntities: 100, Split: 100,
		Blocks: []block.Block{
			{Key: "a", E1: []entity.ID{0, 1, 2, 3, 4}}, // 10 comparisons
			{Key: "b", E1: []entity.ID{5, 6}},          // 1 comparison
		},
	}
	out := BlockPurging{MaxComparisons: 5}.Apply(c)
	if out.Len() != 1 || out.Blocks[0].Key != "b" {
		t.Fatalf("cardinality purge failed: %+v", out.Blocks)
	}
}

func TestBlockFilteringPaperSemantics(t *testing.T) {
	// Three blocks of ascending cardinality; profile 0 appears in all.
	// With r=0.5 it must be retained only in the ⌈0.5·3⌉ = 2 smallest.
	c := &block.Collection{
		Task: entity.Dirty, NumEntities: 5, Split: 5,
		Blocks: []block.Block{
			{Key: "large", E1: []entity.ID{0, 1, 2, 3}}, // 6 comparisons
			{Key: "mid", E1: []entity.ID{0, 1, 2}},      // 3 comparisons
			{Key: "small", E1: []entity.ID{0, 4}},       // 1 comparison
		},
	}
	out := BlockFiltering{Ratio: 0.5}.Apply(c)
	// Output order is ascending cardinality: small, mid, large'.
	var keys []string
	membership := make(map[string][]entity.ID)
	for i := range out.Blocks {
		keys = append(keys, out.Blocks[i].Key)
		membership[out.Blocks[i].Key] = out.Blocks[i].E1
	}
	// Limits: profile 0 (3 blocks) → 2; profiles 1, 2 (2 blocks) → 1;
	// profiles 3, 4 (1 block) → 1. Processing order is ascending
	// cardinality, so 0 stays in small+mid, 1 and 2 stay in mid only, and
	// the large block is left with the lone profile 3 — dropped because a
	// single-member block entails no comparison (Alg. 1, lines 11-12).
	if got, want := keys, []string{"small", "mid"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("block order = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(membership["small"], []entity.ID{0, 4}) {
		t.Errorf("small block = %v", membership["small"])
	}
	if !reflect.DeepEqual(membership["mid"], []entity.ID{0, 1, 2}) {
		t.Errorf("mid block = %v", membership["mid"])
	}
}

func TestBlockFilteringRatioOneKeepsEverything(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	out := BlockFiltering{Ratio: 1.0}.Apply(c)
	if out.Comparisons() != c.Comparisons() {
		t.Fatalf("r=1 changed ‖B‖: %d → %d", c.Comparisons(), out.Comparisons())
	}
	if out.Assignments() != c.Assignments() {
		t.Fatalf("r=1 changed Σ|b|: %d → %d", c.Assignments(), out.Assignments())
	}
}

func TestBlockFilteringMonotoneInRatio(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	var prev int64 = -1
	for _, r := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		out := BlockFiltering{Ratio: r}.Apply(c)
		if got := out.Comparisons(); got < prev {
			t.Fatalf("‖B'‖ not monotone in r: r=%v gives %d < %d", r, got, prev)
		} else {
			prev = got
		}
	}
}

func TestBlockFilteringReducesBPEByRatio(t *testing.T) {
	// Every profile's assignments must shrink to ~r·|Bi| (±1 for
	// rounding), hence BPE ≈ r·BPE₀ (paper §6.2: BPE reduced by
	// (1-r)·100%).
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	out := BlockFiltering{Ratio: 0.5}.Apply(c)
	idxIn := block.NewEntityIndex(c)
	idxOut := block.NewEntityIndex(out)
	for id := 0; id < c.NumEntities; id++ {
		in, outN := idxIn.NumBlocks(entity.ID(id)), idxOut.NumBlocks(entity.ID(id))
		limit := int(0.5*float64(in) + 0.5)
		if limit < 1 {
			limit = 1
		}
		if outN > limit {
			t.Errorf("profile %d kept %d of %d blocks, limit %d", id, outN, in, limit)
		}
	}
}

func TestBlockFilteringGlobalThreshold(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	out := BlockFiltering{Ratio: 0.999, GlobalThreshold: 1}.Apply(c)
	idx := block.NewEntityIndex(out)
	for id := 0; id < c.NumEntities; id++ {
		if idx.NumBlocks(entity.ID(id)) > 1 {
			t.Fatalf("profile %d exceeds the global threshold", id)
		}
	}
}

func TestBlockFilteringDropsEmptyBlocks(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	out := BlockFiltering{Ratio: 0.05}.Apply(c)
	for i := range out.Blocks {
		if out.Blocks[i].Comparisons() == 0 {
			t.Fatalf("block %q retains no comparison", out.Blocks[i].Key)
		}
	}
}

func TestComparisonPropagationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		c := randomDirty(rng, 30, 20)
		fast := ComparisonPropagation{}.Apply(c)
		direct := ComparisonPropagation{}.ApplyDirect(c)
		if !samePairs(fast, direct) {
			t.Fatalf("trial %d: LeCoBI (%d pairs) and direct (%d pairs) disagree",
				trial, len(fast), len(direct))
		}
		if int64(len(fast)) != DistinctComparisons(c) {
			t.Fatalf("trial %d: DistinctComparisons disagrees", trial)
		}
	}
}

func TestComparisonPropagationPaperExample(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	pairs := ComparisonPropagation{}.Apply(c)
	// 13 total comparisons, 3 redundant (paper §1) → 10 distinct.
	if len(pairs) != 10 {
		t.Fatalf("distinct comparisons = %d, want 10", len(pairs))
	}
}

func TestGraphFreeMetaBlocking(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	gt := paperexample.GroundTruth()
	pairs := GraphFreeMetaBlocking{Ratio: 0.55}.Apply(c)
	if len(pairs) == 0 {
		t.Fatal("no comparisons retained")
	}
	// No redundant comparisons.
	seen := make(map[entity.Pair]struct{})
	for _, p := range pairs {
		if _, dup := seen[p]; dup {
			t.Fatalf("redundant comparison %v retained", p)
		}
		seen[p] = struct{}{}
	}
	// Fewer comparisons than the unfiltered distinct set.
	if full := (ComparisonPropagation{}).Apply(c); len(pairs) >= len(full) {
		t.Fatalf("graph-free retained %d of %d distinct comparisons; expected pruning", len(pairs), len(full))
	}
	detected := 0
	for p := range seen {
		if gt.Contains(p.A, p.B) {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("graph-free meta-blocking lost all duplicates")
	}
}

func TestIterativeBlockingOracle(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	gt := paperexample.GroundTruth()
	res := IterativeBlocking{Matcher: OracleMatcher{GT: gt}}.Run(c)
	if len(res.Matches) != 2 {
		t.Fatalf("detected %d duplicates, want 2", len(res.Matches))
	}
	// Iterative blocking must execute fewer comparisons than the raw ‖B‖
	// (it saves the comparisons between already-merged profiles).
	if res.Comparisons >= c.Comparisons() {
		t.Fatalf("executed %d comparisons, input has %d", res.Comparisons, c.Comparisons())
	}
}

func TestIterativeBlockingCleanCleanIdealCase(t *testing.T) {
	// Two matching pairs sharing one big block: after each match, the
	// matched profiles must not be compared to anyone else.
	c := &block.Collection{
		Task: entity.CleanClean, NumEntities: 4, Split: 2,
		Blocks: []block.Block{
			{Key: "x", E1: []entity.ID{0, 1}, E2: []entity.ID{2, 3}},
		},
	}
	gt := entity.NewGroundTruth([]entity.Pair{{A: 0, B: 2}, {A: 1, B: 3}})
	res := IterativeBlocking{Matcher: OracleMatcher{GT: gt}}.Run(c)
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v", res.Matches)
	}
	// Comparisons: (0,2) match → 0,2 retired; (1,3) match → done.
	// Without the ideal case it would need up to 4.
	if res.Comparisons != 2 {
		t.Fatalf("executed %d comparisons, want 2 under the ideal case", res.Comparisons)
	}
}

func TestIterativeBlockingTransitivity(t *testing.T) {
	// Dirty ER: profiles 0≡1 and 1≡2; after both matches, 0-2 must be
	// skipped as already merged.
	c := &block.Collection{
		Task: entity.Dirty, NumEntities: 3, Split: 3,
		Blocks: []block.Block{
			{Key: "a", E1: []entity.ID{0, 1}},
			{Key: "b", E1: []entity.ID{1, 2}},
			{Key: "c", E1: []entity.ID{0, 2}},
		},
	}
	gt := entity.NewGroundTruth([]entity.Pair{{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2}})
	res := IterativeBlocking{Matcher: OracleMatcher{GT: gt}}.Run(c)
	if res.Comparisons != 2 {
		t.Fatalf("executed %d comparisons, want 2 (0-2 saved by transitivity)", res.Comparisons)
	}
}

// --- helpers ---

func randomDirty(rng *rand.Rand, numEntities, numBlocks int) *block.Collection {
	c := &block.Collection{Task: entity.Dirty, NumEntities: numEntities, Split: numEntities}
	for b := 0; b < numBlocks; b++ {
		size := 2 + rng.Intn(5)
		if size > numEntities {
			size = numEntities
		}
		seen := make(map[entity.ID]struct{})
		var members []entity.ID
		for len(members) < size {
			id := entity.ID(rng.Intn(numEntities))
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			members = append(members, id)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		c.Blocks = append(c.Blocks, block.Block{Key: string(rune('a' + b)), E1: members})
	}
	return c
}

func samePairs(a, b []entity.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]entity.Pair(nil), a...)
	bs := append([]entity.Pair(nil), b...)
	less := func(s []entity.Pair) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].A != s[j].A {
				return s[i].A < s[j].A
			}
			return s[i].B < s[j].B
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	return reflect.DeepEqual(as, bs)
}

func TestAutoBlockPurgingThreshold(t *testing.T) {
	// A long tail of 1-comparison blocks plus one quadratic monster: the
	// automatic threshold must sit at the tail and purge the monster.
	c := &block.Collection{Task: entity.Dirty, NumEntities: 200, Split: 200}
	for i := 0; i < 50; i++ {
		c.Blocks = append(c.Blocks, block.Block{
			Key: "small", E1: []entity.ID{entity.ID(2 * i), entity.ID(2*i + 1)},
		})
	}
	var big []entity.ID
	for i := 100; i < 200; i++ {
		big = append(big, entity.ID(i))
	}
	c.Blocks = append(c.Blocks, block.Block{Key: "monster", E1: big}) // 4950 comparisons

	ap := AutoBlockPurging{}
	if got := ap.Threshold(c); got != 1 {
		t.Fatalf("threshold = %d, want 1", got)
	}
	out := ap.Apply(c)
	if out.Len() != 50 {
		t.Fatalf("|B| = %d after auto purge, want 50", out.Len())
	}
}

func TestAutoBlockPurgingKeepsUniformCollections(t *testing.T) {
	// All blocks the same size: nothing is disproportionate, nothing is
	// purged.
	c := &block.Collection{Task: entity.Dirty, NumEntities: 100, Split: 100}
	for i := 0; i < 20; i++ {
		c.Blocks = append(c.Blocks, block.Block{
			Key: "b", E1: []entity.ID{entity.ID(3 * i), entity.ID(3*i + 1), entity.ID(3*i + 2)},
		})
	}
	out := AutoBlockPurging{}.Apply(c)
	if out.Len() != c.Len() {
		t.Fatalf("uniform collection purged: %d of %d kept", out.Len(), c.Len())
	}
	if (AutoBlockPurging{}).Threshold(&block.Collection{}) != 0 {
		t.Fatal("empty collection threshold must be 0")
	}
}

func TestAutoBlockPurgingOnSyntheticData(t *testing.T) {
	ds := datagen.D2D(0.05)
	c := blocking.TokenBlocking{}.Build(ds.Collection)
	out := AutoBlockPurging{}.Apply(c)
	if out.Comparisons() >= c.Comparisons() {
		t.Fatal("auto purging removed nothing on skewed data")
	}
	// Recall must survive: duplicates live in the small blocks.
	pc := float64(out.DetectedDuplicates(ds.GroundTruth)) / float64(ds.GroundTruth.Size())
	if pc < 0.9 {
		t.Fatalf("auto purging destroyed recall: %.3f", pc)
	}
	t.Logf("auto purge: ‖B‖ %d → %d (PC %.3f)", c.Comparisons(), out.Comparisons(), pc)
}
