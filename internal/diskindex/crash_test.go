package diskindex

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/store"
)

// buildCheckpoints feeds profiles into a fresh disk dir at root in two
// halves with a checkpoint after each, and returns the oracle canonical
// snapshot at each checkpoint (index 0 = empty, 1 = first, 2 = second).
// The WAL is on — its rotation and sweep are part of the checkpoint
// path under test, and the corruption matrix damages the log files
// along with everything else.
func buildCheckpoints(t *testing.T, root string, shards int, rcfg incremental.Config, profiles []entity.Profile, compactAfter int) []*incremental.Snapshot {
	t.Helper()
	serial, err := incremental.NewResolver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	g := openDiskGroup(t, root, shards, rcfg, 0, compactAfter, true)
	oracles := []*incremental.Snapshot{nil}
	half := len(profiles) / 2
	for _, batch := range [][]entity.Profile{profiles[:half], profiles[half:]} {
		for _, p := range batch {
			serial.Resolve(p)
			if _, err := g.Resolve(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, serial.Snapshot())
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return oracles
}

// copyDir clones the disk layout (two levels: root/s<k>/files).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	shards, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range shards {
		sub := filepath.Join(dst, sd.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		files, err := os.ReadDir(filepath.Join(src, sd.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			raw, err := os.ReadFile(filepath.Join(src, sd.Name(), f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sub, f.Name()), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// listFiles returns every file under the two-level layout, relative to
// root.
func listFiles(t *testing.T, root string) []string {
	t.Helper()
	var out []string
	shards, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range shards {
		files, err := os.ReadDir(filepath.Join(root, sd.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			out = append(out, filepath.Join(sd.Name(), f.Name()))
		}
	}
	return out
}

// recoverAndCheck recovers the (possibly damaged) directory and asserts
// the result is exactly one of the known checkpoints: the recovered
// checkpoint id picks an oracle, and the materialized contents must
// equal it bit for bit. Recovery must never error and never produce a
// state that matches no checkpoint — torn files roll the index back,
// they do not corrupt it.
func recoverAndCheck(t *testing.T, root string, shards int, ckptIDs []uint64, oracles []*incremental.Snapshot, what string) uint64 {
	t.Helper()
	layout, err := store.RecoverDiskDir(root, shards)
	if err != nil {
		t.Fatalf("%s: recovery errored: %v", what, err)
	}
	ckpt := layout.Checkpoint
	layout.Close()
	which := -1
	for i, id := range ckptIDs {
		if id == ckpt {
			which = i
		}
	}
	if which < 0 {
		t.Fatalf("%s: recovered checkpoint %d is not one of the committed checkpoints %v", what, ckpt, ckptIDs)
	}
	snap, err := store.LoadDiskDir(root)
	if err != nil {
		t.Fatalf("%s: load after recovery: %v", what, err)
	}
	if which == 0 {
		if len(snap.Profiles) != 0 {
			t.Fatalf("%s: recovered checkpoint 0 but loaded %d profiles", what, len(snap.Profiles))
		}
		return ckpt
	}
	if !reflect.DeepEqual(snap, oracles[which]) {
		t.Fatalf("%s: recovered checkpoint %d but contents differ from that checkpoint's oracle", what, ckpt)
	}
	return ckpt
}

// TestCorruptionMatrix is the crash-recovery battery: every segment and
// manifest file is truncated at every interesting boundary and
// bit-flipped at sampled offsets, and recovery must always land on a
// committed checkpoint whose materialized contents match its oracle.
// Truncations model torn writes (the SIGKILL window); since every file
// is written via rename, a torn newest generation means falling back —
// losing the newest UNCOMMITTED generation is allowed, losing a sealed
// one that every shard committed is not, unless the damage is to the
// sealed history itself (bit rot), in which case rolling further back
// beats serving corrupt data.
func TestCorruptionMatrix(t *testing.T) {
	profiles := testProfiles(t, 60)
	rcfg := incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40}
	const shards = 2
	golden := t.TempDir()
	oracles := buildCheckpoints(t, golden, shards, rcfg, profiles, 2)
	ckptIDs := []uint64{0, 1, 2}
	files := listFiles(t, golden)
	if len(files) < shards*2 {
		t.Fatalf("golden layout has only %d files", len(files))
	}

	for _, rel := range files {
		raw, err := os.ReadFile(filepath.Join(golden, rel))
		if err != nil {
			t.Fatal(err)
		}
		// Truncation points: empty, one byte, just inside the header,
		// mid-file, just before and inside the footer/checksum tail.
		cuts := []int{0, 1, 8, len(raw) / 2, len(raw) - 25, len(raw) - 12, len(raw) - 1}
		for _, cut := range cuts {
			if cut < 0 || cut >= len(raw) {
				continue
			}
			what := fmt.Sprintf("%s truncated to %d/%d", rel, cut, len(raw))
			dir := t.TempDir()
			copyDir(t, golden, dir)
			if err := os.WriteFile(filepath.Join(dir, rel), raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			recoverAndCheck(t, dir, shards, ckptIDs, oracles, what)
		}
		// Sampled single-bit flips across the file body.
		for _, off := range []int{0, 7, len(raw) / 3, len(raw) / 2, len(raw) - 5} {
			if off < 0 || off >= len(raw) {
				continue
			}
			what := fmt.Sprintf("%s bit-flipped at %d/%d", rel, off, len(raw))
			dir := t.TempDir()
			copyDir(t, golden, dir)
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x10
			if err := os.WriteFile(filepath.Join(dir, rel), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			recoverAndCheck(t, dir, shards, ckptIDs, oracles, what)
		}
	}

	// The undamaged layout must recover the newest checkpoint.
	if got := recoverAndCheck(t, golden, shards, ckptIDs, oracles, "undamaged"); got != 2 {
		t.Fatalf("undamaged layout recovered checkpoint %d, want 2", got)
	}
}

// TestNewestGenerationTornFallsBack pins the cross-shard alignment rule
// directly: damaging ONE shard's newest manifest rolls EVERY shard back
// to the previous checkpoint — a consistent older index, never a skew
// where shards serve different checkpoints. Compaction is disabled so
// each checkpoint has exactly one manifest; with compaction on, tearing
// the newest manifest falls back to the same checkpoint's
// pre-compaction manifest instead (the corruption matrix covers that).
func TestNewestGenerationTornFallsBack(t *testing.T) {
	profiles := testProfiles(t, 60)
	rcfg := incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40}
	const shards = 2
	golden := t.TempDir()
	oracles := buildCheckpoints(t, golden, shards, rcfg, profiles, 100)

	// Find shard 1's newest manifest and truncate it mid-file.
	files, err := os.ReadDir(filepath.Join(golden, "s1"))
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, f := range files {
		name := f.Name()
		if len(name) > 9 && name[:9] == "manifest-" && (newest == "" || name > newest) {
			newest = name
		}
	}
	if newest == "" {
		t.Fatal("no manifest found on shard 1")
	}
	path := filepath.Join(golden, "s1", newest)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got := recoverAndCheck(t, golden, shards, []uint64{0, 1, 2}, oracles, "shard 1 newest manifest torn")
	if got != 1 {
		t.Fatalf("recovered checkpoint %d after tearing shard 1's newest manifest, want fallback to 1", got)
	}
}

// TestSealFaultNeverLosesCheckpoint simulates a crash at every fault
// site inside the seal's write path — create, write, short write, sync,
// rename — after a successful checkpoint. The failed checkpoint is
// reported to the caller; the directory must still recover the last
// committed checkpoint with its exact contents. A sealed generation is
// never lost.
func TestSealFaultNeverLosesCheckpoint(t *testing.T) {
	profiles := testProfiles(t, 60)
	rcfg := incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40}
	const shards = 2
	sites := []struct {
		name string
		spec fault.Spec
	}{
		{store.FaultSaveCreate, fault.Spec{Times: 1}},
		{store.FaultSaveWrite, fault.Spec{Times: 1}},
		{store.FaultSaveWrite + "-short", fault.Spec{ShortWrite: 7, Times: 1}},
		{store.FaultSaveSync, fault.Spec{Times: 1}},
		{store.FaultSaveRename, fault.Spec{Times: 1}},
	}
	for _, site := range sites {
		t.Run(site.name, func(t *testing.T) {
			root := t.TempDir()
			serial, err := incremental.NewResolver(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			// WAL off: this battery pins the segment layer's own guarantee —
			// rollback to the committed checkpoint — which the log would
			// (correctly) mask by replaying the uncheckpointed tail.
			g := openDiskGroup(t, root, shards, rcfg, 0, 2, false)
			for _, p := range profiles[:30] {
				serial.Resolve(p)
				if _, err := g.Resolve(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := g.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			oracle := serial.Snapshot()
			for _, p := range profiles[30:] {
				if _, err := g.Resolve(p); err != nil {
					t.Fatal(err)
				}
			}
			in := fault.New(1)
			armed := site.name
			if site.spec.ShortWrite > 0 {
				armed = store.FaultSaveWrite
			}
			in.Arm(armed, site.spec)
			store.SetInjector(in)
			err = g.Checkpoint()
			store.SetInjector(nil)
			if err == nil {
				t.Fatal("checkpoint succeeded despite armed fault")
			}
			// Crash: abandon the group without closing cleanly.
			oracles := []*incremental.Snapshot{nil, oracle}
			if got := recoverAndCheck(t, root, shards, []uint64{0, 1}, oracles, "post-fault recovery"); got != 1 {
				t.Fatalf("recovered checkpoint %d, want the committed checkpoint 1", got)
			}
			g.Close()
		})
	}
}
