package arena

import (
	"sync"
	"testing"
)

func TestArenaAlloc(t *testing.T) {
	var a Arena[int32]
	s1 := a.Alloc(10)
	if len(s1) != 10 {
		t.Fatalf("len = %d, want 10", len(s1))
	}
	for i := range s1 {
		if s1[i] != 0 {
			t.Fatal("Alloc must return zeroed memory")
		}
		s1[i] = int32(i)
	}
	s2 := a.Alloc(10)
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatal("second Alloc must not see first slice's writes")
		}
	}
	// Full-capacity slices must not alias: appending to s1 can't grow into s2.
	if &s1[:cap(s1)][cap(s1)-1] == &s2[:cap(s2)][cap(s2)-1] {
		t.Fatal("alloc slices alias")
	}
	for i := range s1 {
		if s1[i] != int32(i) {
			t.Fatal("first slice clobbered by second Alloc")
		}
	}
}

func TestArenaOversized(t *testing.T) {
	var a Arena[byte]
	big := a.Alloc(3 * slabSize)
	if len(big) != 3*slabSize {
		t.Fatalf("oversized alloc len = %d", len(big))
	}
	small := a.Alloc(8)
	if len(small) != 8 {
		t.Fatal("small alloc after oversized failed")
	}
}

func TestArenaResetReuses(t *testing.T) {
	var a Arena[int64]
	s := a.Alloc(100)
	for i := range s {
		s[i] = 7
	}
	a.Reset()
	s2 := a.Alloc(100)
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatal("Reset must zero the reused slab")
		}
	}
	// After warm-up, Alloc within one slab should not allocate.
	a.Reset()
	allocs := testing.AllocsPerRun(50, func() {
		a.Reset()
		for i := 0; i < 16; i++ {
			a.Alloc(64)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm arena allocated %v times per pass", allocs)
	}
}

func TestArenaManySlabs(t *testing.T) {
	var a Arena[int32]
	total := 0
	for i := 0; i < 100; i++ {
		total += len(a.Alloc(slabSize / 3))
	}
	if total != 100*(slabSize/3) {
		t.Fatalf("total = %d", total)
	}
	a.Reset()
	if len(a.Alloc(5)) != 5 {
		t.Fatal("alloc after multi-slab reset failed")
	}
}

func TestPoolRecycles(t *testing.T) {
	var p Pool[int32]
	b := p.GetCap(256)
	if cap(b.S) < 256 || len(b.S) != 0 {
		t.Fatalf("GetCap: len=%d cap=%d", len(b.S), cap(b.S))
	}
	b.S = append(b.S, 1, 2, 3)
	p.Put(b)
	b2 := p.Get()
	if len(b2.S) != 0 {
		t.Fatal("Get must reset length")
	}
	allocs := testing.AllocsPerRun(100, func() {
		b := p.GetCap(256)
		b.S = append(b.S, 42)
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("warm pool allocated %v times per cycle", allocs)
	}
}

func TestPoolConcurrent(t *testing.T) {
	var p Pool[byte]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := p.GetCap(64)
				b.S = append(b.S, seed)
				if b.S[0] != seed {
					t.Error("pool buffer raced")
					return
				}
				p.Put(b)
			}
		}(byte(w))
	}
	wg.Wait()
}
