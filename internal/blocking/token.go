package blocking

import (
	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/obs"
)

// TokenBlocking is the paper's primary blocking method (§1, §6.2): it
// splits every attribute value into whitespace tokens and creates a block
// for every distinct token shared by at least two profiles (one from each
// source for Clean-Clean ER). It is schema-agnostic and redundancy-positive.
type TokenBlocking struct {
	// MinTokenLength drops tokens shorter than this many bytes; 0 keeps
	// all tokens.
	MinTokenLength int
	// Workers shards key extraction and posting-list merging across this
	// many goroutines: 0 or 1 keeps the serial build, negative uses
	// GOMAXPROCS. The output is bit-identical regardless of worker count.
	Workers int
}

var (
	_ WorkerSetter   = TokenBlocking{}
	_ ObservedMethod = TokenBlocking{}
)

// Name implements Method.
func (TokenBlocking) Name() string { return "Token Blocking" }

// WithWorkers implements WorkerSetter.
func (t TokenBlocking) WithWorkers(workers int) Method {
	if t.Workers == 0 {
		t.Workers = workers
	}
	return t
}

// Build implements Method.
func (t TokenBlocking) Build(c *entity.Collection) *block.Collection {
	return t.BuildObserved(c, nil)
}

// BuildObserved implements ObservedMethod.
func (t TokenBlocking) BuildObserved(c *entity.Collection, o *obs.Observer) *block.Collection {
	return buildKeyed(c, t.Workers, o, func(p *entity.Profile, toks []string, emit func(string)) []string {
		for _, a := range p.Attributes {
			toks = entity.AppendTokens(toks[:0], a.Value)
			for _, tok := range toks {
				if len(tok) >= t.MinTokenLength {
					emit(tok)
				}
			}
		}
		return toks
	}, nil)
}
