module metablocking

go 1.24
