// Package core implements Meta-blocking: the implicit blocking graph, the
// five edge-weighting schemes (Fig. 4), the Original (Alg. 2) and Optimized
// (Alg. 3) edge-weighting implementations, and all pruning algorithms —
// CEP, CNP, WEP, WNP (ref [22]) plus the paper's Redefined and Reciprocal
// node-centric variants (§5).
package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnsupportedScheme is the shared sentinel for "this component cannot
// evaluate that weighting scheme". Components wrap it with their own
// context (e.g. internal/incremental explains why EJS is out of reach),
// and the public metablocking package aliases it, so errors.Is matches
// across every layer.
var ErrUnsupportedScheme = errors.New("metablocking: unsupported weighting scheme")

// Scheme selects the edge-weighting scheme of the blocking graph (Fig. 4).
// All schemes assign higher weights to edges more likely to connect
// matching profiles.
type Scheme int

const (
	// ARCS — Aggregate Reciprocal Comparisons Scheme: Σ 1/‖b‖ over the
	// blocks shared by the two profiles. The smaller the shared blocks,
	// the likelier the match.
	ARCS Scheme = iota
	// CBS — Common Blocks Scheme: |Bij|, the number of shared blocks.
	CBS
	// ECBS — Enhanced Common Blocks Scheme: CBS discounted by the number
	// of blocks each profile appears in.
	ECBS
	// JS — Jaccard Scheme: the portion of blocks shared by the profiles.
	JS
	// EJS — Enhanced Jaccard Scheme: JS discounted by the node degrees
	// (profiles involved in many non-redundant comparisons).
	EJS
)

// AllSchemes lists every weighting scheme, in the paper's order. Experiment
// tables average their measures across these.
var AllSchemes = []Scheme{ARCS, CBS, ECBS, JS, EJS}

// String returns the scheme's acronym as used in the paper.
func (s Scheme) String() string {
	switch s {
	case ARCS:
		return "ARCS"
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case JS:
		return "JS"
	case EJS:
		return "EJS"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// NeedsDegrees reports whether the scheme requires node degrees (EJS).
func (s Scheme) NeedsDegrees() bool { return s == EJS }

// usesReciprocalCardinality reports whether the per-block accumulator adds
// 1/‖b‖ (ARCS) rather than 1 (all other schemes).
func (s Scheme) usesReciprocalCardinality() bool { return s == ARCS }

// weightContext carries the per-graph constants every weight evaluation
// needs.
type weightContext struct {
	scheme    Scheme
	numBlocks float64 // |B|
	numNodes  float64 // |VB|
}

// weight computes the edge weight from the accumulated co-occurrence
// statistic. For ARCS, common is Σ 1/‖b‖ over shared blocks; for all other
// schemes it is |Bij|. bi and bj are |Bi| and |Bj| (blocks per profile);
// di and dj are the node degrees (used only by EJS).
//
// The operand pairs are canonicalized so the result is bit-exact identical
// whichever endpoint the edge is evaluated from (floating-point
// multiplication is commutative but not associative).
func (w weightContext) weight(common float64, bi, bj int, di, dj int32) float64 {
	if bi > bj || (bi == bj && di > dj) {
		bi, bj = bj, bi
		di, dj = dj, di
	}
	switch w.scheme {
	case ARCS, CBS:
		return common
	case ECBS:
		return common * math.Log(w.numBlocks/float64(bi)) * math.Log(w.numBlocks/float64(bj))
	case JS:
		return common / (float64(bi) + float64(bj) - common)
	case EJS:
		js := common / (float64(bi) + float64(bj) - common)
		return js * math.Log(w.numNodes/float64(di)) * math.Log(w.numNodes/float64(dj))
	default:
		panic(fmt.Sprintf("core: unknown weighting scheme %d", int(w.scheme)))
	}
}
