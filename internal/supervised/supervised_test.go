package supervised

import (
	"math"
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/eval"
	"metablocking/internal/paperexample"
)

func TestFeatureExtractionPaperExample(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	e := NewExtractor(c)
	if e.NumEdges() != 10 {
		t.Fatalf("|EB| = %d, want 10", e.NumEdges())
	}
	features := make(map[entity.Pair][NumFeatures]float64)
	e.ForEachEdge(func(ed Edge) {
		features[entity.MakePair(ed.I, ed.J)] = ed.Features
	})
	if len(features) != 10 {
		t.Fatalf("edges = %d, want 10", len(features))
	}
	// The JS feature must equal the JS weights of Figure 2(a).
	for p, w := range paperexample.JSWeights() {
		if got := features[p][3]; math.Abs(got-w) > 1e-12 {
			t.Errorf("JS feature of %v = %v, want %v", p, got, w)
		}
	}
	// CBS of p1-p3 is 2 (jack, miller); ARCS is 2 (two 1-comparison
	// blocks); degrees are 2 and 5.
	f13 := features[entity.MakePair(paperexample.P1, paperexample.P3)]
	if f13[1] != 2 || math.Abs(f13[0]-2) > 1e-12 {
		t.Errorf("CBS/ARCS of p1-p3 = %v/%v, want 2/2", f13[1], f13[0])
	}
	if f13[4] != 2 || f13[5] != 5 {
		t.Errorf("degrees of p1-p3 = %v/%v, want 2/5", f13[4], f13[5])
	}
}

// TestFeaturesAgreeWithGraphWeights cross-checks every scheme feature
// against the core package's weights on a synthetic dataset.
func TestFeaturesAgreeWithGraphWeights(t *testing.T) {
	ds := datagen.D1C(0.03)
	c := blocking.TokenBlocking{}.Build(ds.Collection)
	e := NewExtractor(c)

	for fi, scheme := range map[int]core.Scheme{0: core.ARCS, 1: core.CBS, 2: core.ECBS, 3: core.JS} {
		g := core.NewGraph(c, scheme)
		want := make(map[entity.Pair]float64)
		g.ForEachEdge(func(i, j entity.ID, w float64) {
			want[entity.MakePair(i, j)] = w
		})
		count := 0
		e.ForEachEdge(func(ed Edge) {
			p := entity.MakePair(ed.I, ed.J)
			if w, ok := want[p]; !ok || math.Abs(w-ed.Features[fi]) > 1e-9 {
				t.Fatalf("%v feature of %v = %v, want %v", scheme, p, ed.Features[fi], w)
			}
			count++
		})
		if count != len(want) {
			t.Fatalf("%v: edge counts differ: %d vs %d", scheme, count, len(want))
		}
	}
}

func TestTrainRejectsDegenerate(t *testing.T) {
	edges := []Edge{{}, {}}
	if _, err := Train(edges, []bool{true}, TrainConfig{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train(edges, []bool{true, true}, TrainConfig{}); err == nil {
		t.Error("single-class training accepted")
	}
}

func TestTrainSeparatesLinearlySeparableData(t *testing.T) {
	var edges []Edge
	var labels []bool
	for i := 0; i < 200; i++ {
		var e Edge
		if i%2 == 0 {
			e.Features = [NumFeatures]float64{2, 5, 3, 0.8, 2, 2}
			labels = append(labels, true)
		} else {
			e.Features = [NumFeatures]float64{0.1, 1, 0.2, 0.05, 40, 40}
			labels = append(labels, false)
		}
		edges = append(edges, e)
	}
	m, err := Train(edges, labels, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		p := m.Probability(e)
		if labels[i] && p < 0.9 {
			t.Fatalf("positive classified at %v", p)
		}
		if !labels[i] && p > 0.1 {
			t.Fatalf("negative classified at %v", p)
		}
	}
}

// TestSupervisedRunBeatsUnsupervisedWEP: on the synthetic benchmark, the
// classifier should reach comparable recall to WEP with clearly better
// precision (the headline claim of ref [23]).
func TestSupervisedRunBeatsUnsupervisedWEP(t *testing.T) {
	ds := datagen.D1C(0.1)
	blocks := blockproc.BlockFiltering{Ratio: 0.8}.Apply(
		blockproc.BlockPurging{}.Apply(blocking.TokenBlocking{}.Build(ds.Collection)))

	res, err := Run(blocks, ds.GroundTruth, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sup := eval.EvaluatePairs(res.Pairs, ds.GroundTruth, blocks.Comparisons())

	wepPairs := core.Run(blocks, core.Config{Scheme: core.JS, Algorithm: core.WEP}).Pairs
	wep := eval.EvaluatePairs(wepPairs, ds.GroundTruth, blocks.Comparisons())

	t.Logf("supervised: PC=%.3f PQ=%.4f (%d pairs, %d training edges)",
		sup.PC(), sup.PQ(), len(res.Pairs), res.TrainingEdges)
	t.Logf("WEP (JS):   PC=%.3f PQ=%.4f (%d pairs)", wep.PC(), wep.PQ(), len(wepPairs))

	if sup.PC() < 0.85 {
		t.Errorf("supervised recall too low: %.3f", sup.PC())
	}
	if sup.PQ() <= wep.PQ() {
		t.Errorf("supervised precision %.4f does not beat WEP's %.4f", sup.PQ(), wep.PQ())
	}
}

func TestRunValidation(t *testing.T) {
	ds := datagen.D1C(0.02)
	blocks := blocking.TokenBlocking{}.Build(ds.Collection)
	if _, err := Run(blocks, ds.GroundTruth, Config{SampleFraction: 2}); err == nil {
		t.Error("bad sample fraction accepted")
	}
	empty := blocks.Clone()
	empty.Blocks = nil
	if _, err := Run(empty, ds.GroundTruth, Config{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	ds := datagen.D1C(0.05)
	blocks := blocking.TokenBlocking{}.Build(ds.Collection)
	a, err := Run(blocks, ds.GroundTruth, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(blocks, ds.GroundTruth, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("same seed produced %d vs %d pairs", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("same seed produced different pairs")
		}
	}
}
