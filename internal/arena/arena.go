// Package arena provides slab allocation and pooled scratch buffers for the
// pipeline's hot paths. Two tools, two lifetimes:
//
//   - Arena[T]: a bump allocator carving many small slices out of large
//     slabs. One lifetime for everything it hands out — the owner resets
//     (not frees) the whole arena between passes. Use it where a pass makes
//     thousands of short slices that all die together (per-key member
//     lists, per-block scratch).
//   - Pool[T]: a sync.Pool of reusable []T scratch buffers for per-worker /
//     per-batch state. Get hands back a zero-length slice with whatever
//     capacity the buffer grew to on previous passes; Put recycles it.
//
// Ownership rule: slices returned by Arena.Alloc are valid until the next
// Reset and must not be retained past it; slices from Pool.Get are owned by
// the caller until Put and must not be used after. Neither is safe for
// concurrent use of a single instance — give each worker its own, which is
// exactly what the pool makes cheap.
package arena

import "sync"

// slabSize is the number of elements per slab. Big enough that slab
// boundaries are rare, small enough that a mostly-unused trailing slab
// doesn't hurt.
const slabSize = 8192

// Arena is a slab-backed bump allocator for []T. The zero value is ready
// to use.
type Arena[T any] struct {
	slabs [][]T
	cur   []T // active slab, sliced to its used length
}

// Alloc returns a zero-value-filled slice of length n carved from the
// current slab. Allocations larger than the slab size get a dedicated slab.
func (a *Arena[T]) Alloc(n int) []T {
	if n > slabSize {
		s := make([]T, n)
		// Park the oversized slab as fully used so Reset keeps reusing the
		// regular current slab.
		a.slabs = append(a.slabs, s)
		return s
	}
	if cap(a.cur)-len(a.cur) < n {
		a.cur = make([]T, 0, slabSize)
		a.slabs = append(a.slabs, a.cur)
	}
	at := len(a.cur)
	a.cur = a.cur[:at+n]
	// Cap the returned slice at its own end so appends by the caller cannot
	// grow into a neighbour's allocation.
	return a.cur[at : at+n : at+n]
}

// Reset makes the arena empty while keeping one slab for reuse. Previously
// returned slices become invalid: they may be handed out again, zeroed.
func (a *Arena[T]) Reset() {
	var keep []T
	for _, s := range a.slabs {
		if cap(s) == slabSize {
			keep = s[:0]
			break
		}
	}
	a.slabs = a.slabs[:0]
	a.cur = nil
	if keep != nil {
		clear(keep[:cap(keep)])
		a.cur = keep
		a.slabs = append(a.slabs, keep)
	}
}

// Buf is a pooled scratch buffer. Callers append to S (re-slicing it as
// they would any slice) and hand the whole Buf back with Pool.Put; the
// pointer indirection is what keeps Get/Put free of boxing allocations.
type Buf[T any] struct {
	S []T
}

// Pool hands out reusable scratch buffers. The zero value is ready to use
// and safe for concurrent Get/Put. Steady state allocates nothing: the
// same *Buf cycles between Get and Put with its capacity intact.
type Pool[T any] struct {
	p sync.Pool
}

// Get returns a buffer with S reset to zero length, reusing the capacity
// it grew to on previous passes.
func (p *Pool[T]) Get() *Buf[T] {
	if v := p.p.Get(); v != nil {
		b := v.(*Buf[T])
		b.S = b.S[:0]
		return b
	}
	return &Buf[T]{}
}

// GetCap is Get but guarantees cap(S) of at least n.
func (p *Pool[T]) GetCap(n int) *Buf[T] {
	b := p.Get()
	if cap(b.S) < n {
		b.S = make([]T, 0, n)
	}
	return b
}

// Put recycles b for a future Get. Putting nil is a no-op. The caller must
// not touch b or b.S afterwards.
func (p *Pool[T]) Put(b *Buf[T]) {
	if b != nil {
		p.p.Put(b)
	}
}
