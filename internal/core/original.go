package core

import (
	"metablocking/internal/entity"
	"metablocking/internal/obs"
	"metablocking/internal/postings"
)

// ForEachEdgeOriginal invokes fn once per edge with its weight using the
// Original Edge Weighting of Algorithm 2: it iterates over every
// comparison of every block, intersects the two sorted block lists, aborts
// early on redundant comparisons (the first common block ID violating the
// LeCoBI condition), and otherwise derives the weight from the full
// intersection. Its average cost is O(2·BPE·‖B‖), which the optimized
// ForEachEdge reduces to O(‖B‖ + |v̄|·|E|) (paper §4.3).
func (g *Graph) ForEachEdgeOriginal(fn func(i, j entity.ID, w float64)) {
	var seen, weighed int64
	g.blocks.ForEachComparison(func(blockID int, a, b entity.ID) bool {
		if seen++; seen&obs.StrideMask == 0 && g.obs.Canceled() {
			return false
		}
		common, ok := g.intersect(int32(blockID), a, b)
		if !ok {
			return true // redundant comparison: skip
		}
		var da, db int32
		if g.degrees != nil {
			da, db = g.degrees[a], g.degrees[b]
		}
		w := g.ctx.weight(common, g.index.NumBlocks(a), g.index.NumBlocks(b), da, db)
		weighed++
		fn(a, b, w)
		return true
	})
	g.obs.Counter(obs.CtrEdgesWeighted).Add(weighed)
}

// intersect derives the co-occurrence statistic of a and b (Alg. 2, lines
// 7-15): the least common block decides redundancy (LeCoBI) with an early
// exit, and only non-redundant comparisons pay for the full intersection.
// Both steps use the galloping merge, which skips through skewed list
// pairs in logarithmic hops. It reports ok=false when the first common
// block ID differs from blockID, which marks the comparison as redundant.
func (g *Graph) intersect(blockID int32, a, b entity.ID) (common float64, ok bool) {
	la, lb := g.blockLists(a, b)
	first := postings.First(la, lb)
	if first < 0 || first != blockID {
		return 0, false
	}
	if g.invCard != nil {
		// ARCS accumulates in ascending block order, exactly like the
		// two-pointer walk it replaces, so the float sum is bit-identical.
		postings.ForEachCommon(la, lb, func(bid int32) {
			common += g.invCard[bid]
		})
	} else {
		common = float64(postings.IntersectCount(la, lb))
	}
	return common, true
}

// ForEachNodeOriginal mirrors ForEachNode but derives every edge weight
// with the per-pair block-list intersection of Algorithm 2 instead of the
// ScanCount accumulators. It exists to measure what the node-centric
// pruning schemes cost without Optimized Edge Weighting (Table 3 vs
// Table 5).
func (g *Graph) ForEachNodeOriginal(fn func(i entity.ID, neighbors []entity.ID, weights []float64)) {
	tick := obsTick{o: g.obs}
	var weighed int64
	for id := 0; id < g.blocks.NumEntities; id++ {
		if tick.step() {
			break
		}
		i := entity.ID(id)
		if g.index.NumBlocks(i) == 0 {
			continue
		}
		neighbors := g.distinctNeighbors(i)
		if len(neighbors) == 0 {
			continue
		}
		weights := g.sc.weights[:0]
		var di, dj int32
		for _, j := range neighbors {
			common, _ := g.intersectAll(i, j)
			if g.degrees != nil {
				di, dj = g.degrees[i], g.degrees[j]
			}
			weights = append(weights, g.ctx.weight(common, g.index.NumBlocks(i), g.index.NumBlocks(j), di, dj))
		}
		g.sc.weights = weights
		weighed += int64(len(neighbors))
		fn(i, neighbors, weights)
	}
	g.obs.Counter(obs.CtrEdgesWeighted).Add(weighed)
}

// distinctNeighbors enumerates the distinct co-occurring profiles of i
// without computing weights (flags-only ScanCount).
func (g *Graph) distinctNeighbors(i entity.ID) []entity.ID {
	sc := g.sc
	sc.neighbors = sc.neighbors[:0]
	sc.epoch++
	epoch := sc.epoch
	cells := sc.cells
	clean := g.blocks.Task == entity.CleanClean
	iFirst := g.blocks.InFirst(i)
	for _, bid := range g.blockList(i) {
		b := &g.blocks.Blocks[bid]
		var others []entity.ID
		switch {
		case !clean:
			others = b.E1
		case iFirst:
			others = b.E2
		default:
			others = b.E1
		}
		for _, j := range others {
			if j == i {
				continue
			}
			if cells[j].epoch != epoch {
				cells[j].epoch = epoch
				sc.neighbors = append(sc.neighbors, j)
			}
		}
	}
	return sc.neighbors
}

// intersectAll counts the full block-list intersection without a LeCoBI
// early exit (used by the node-centric original traversal, where the
// neighbor set is already distinct), with the same galloping merge as
// intersect.
func (g *Graph) intersectAll(a, b entity.ID) (common float64, blocks int) {
	la, lb := g.blockLists(a, b)
	if g.invCard != nil {
		postings.ForEachCommon(la, lb, func(bid int32) {
			blocks++
			common += g.invCard[bid]
		})
		return common, blocks
	}
	blocks = postings.IntersectCount(la, lb)
	return float64(blocks), blocks
}
