package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHTTPMetricsCounters(t *testing.T) {
	m := NewMetrics()
	status := http.StatusOK
	h := HTTPMetrics(m, nil, "probe", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(time.Millisecond) // make the latency counter observable
		w.WriteHeader(status)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	hit := func(want int) {
		t.Helper()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("status = %d, want %d", resp.StatusCode, want)
		}
	}
	hit(200)
	status = http.StatusInternalServerError
	hit(500)
	status = http.StatusTooManyRequests
	hit(429)

	s := m.Snapshot()
	if got := s.Counter("http.probe.requests"); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if got := s.Counter("http.probe.errors"); got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
	if got := s.Counter("http.probe.rejected"); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if got := s.Counter("http.probe.latency_ns"); got < 3*int64(time.Millisecond) {
		t.Fatalf("latency_ns = %d, want ≥ 3ms of handler sleep", got)
	}
}

func TestHTTPMetricsSpans(t *testing.T) {
	var started, ended []string
	o := New(nil, WithSpanHooks(
		func(stage string) { started = append(started, stage) },
		func(stage string, _ time.Duration) { ended = append(ended, stage) },
	))
	h := HTTPMetrics(nil, o, "spanned", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(started) != 1 || started[0] != "http.spanned" || len(ended) != 1 {
		t.Fatalf("spans = %v / %v, want one http.spanned pair", started, ended)
	}
}

// TestHTTPMetricsNilRegistry: a nil registry degrades to pass-through.
func TestHTTPMetricsNilRegistry(t *testing.T) {
	h := HTTPMetrics(nil, nil, "noop", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
}
