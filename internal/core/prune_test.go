package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func pairSet(pairs []entity.Pair) map[entity.Pair]int {
	out := make(map[entity.Pair]int)
	for _, p := range pairs {
		out[p]++
	}
	return out
}

func sortedDistinct(pairs []entity.Pair) []entity.Pair {
	set := pairSet(pairs)
	out := make([]entity.Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func pairs(ids ...entity.ID) []entity.Pair {
	var out []entity.Pair
	for i := 0; i+1 < len(ids); i += 2 {
		out = append(out, entity.MakePair(ids[i], ids[i+1]))
	}
	return out
}

// TestWEPPaperExample: with exact mean 0.27179, WEP retains the four edges
// of weight ≥ mean: p1-p3, p2-p4, p3-p5, p5-p6. (The paper's Figure 2(b)
// uses the rounded threshold 1/4 and retains p4-p6 as well; the exact mean
// excludes it.)
func TestWEPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := sortedDistinct(g.Prune(WEP))
	want := pairs(paperexample.P1, paperexample.P3,
		paperexample.P2, paperexample.P4,
		paperexample.P3, paperexample.P5,
		paperexample.P5, paperexample.P6)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WEP = %v, want %v", got, want)
	}
	// Both duplicates survive — PC(B') = PC(B), as in Figure 2(c).
	gt := paperexample.GroundTruth()
	for _, p := range []entity.Pair{entity.MakePair(paperexample.P1, paperexample.P3), entity.MakePair(paperexample.P2, paperexample.P4)} {
		if _, ok := pairSet(got)[p]; !ok {
			t.Errorf("duplicate %v pruned", p)
		}
	}
	_ = gt
}

// TestCEPPaperExample: K = ⌊Σ|b|/2⌋ = ⌊18/2⌋ = 9 retains all edges except
// the lightest (p3-p4 at 1/8).
func TestCEPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	if g.CardinalityEdgeThreshold() != 9 {
		t.Fatalf("K = %d, want 9", g.CardinalityEdgeThreshold())
	}
	got := pairSet(g.Prune(CEP))
	if len(got) != 9 {
		t.Fatalf("CEP retained %d edges, want 9", len(got))
	}
	dropped := entity.MakePair(paperexample.P3, paperexample.P4)
	if _, ok := got[dropped]; ok {
		t.Fatalf("CEP kept the lightest edge %v", dropped)
	}
}

// TestCNPPaperExample: k = ⌊Σ|b|/|E|−1⌋ = ⌊18/6−1⌋ = 2; the directed
// retained edges were derived by hand from the Figure 2(a) weights.
func TestCNPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	if g.CardinalityNodeThreshold() != 2 {
		t.Fatalf("k = %d, want 2", g.CardinalityNodeThreshold())
	}
	got := g.Prune(CNP)
	// v1→{3,4}, v2→{3,4}, v3→{5,1}, v4→{2,6}, v5→{6,3}, v6→{5,4}:
	// 12 directed edges.
	if len(got) != 12 {
		t.Fatalf("CNP retained %d comparisons, want 12", len(got))
	}
	distinct := sortedDistinct(got)
	want := pairs(0, 2, 0, 3, 1, 2, 1, 3, 2, 4, 3, 5, 4, 5)
	if !reflect.DeepEqual(distinct, want) {
		t.Fatalf("CNP distinct = %v, want %v", distinct, want)
	}
}

// TestRedefinedCNPPaperExample: the distinct pairs of CNP, each retained
// once (7 comparisons instead of 12) — same recall, no redundancy.
func TestRedefinedCNPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := g.Prune(RedefinedCNP)
	if len(got) != 7 {
		t.Fatalf("Redefined CNP retained %d, want 7", len(got))
	}
	if !reflect.DeepEqual(sortedDistinct(got), sortedDistinct(g.Prune(CNP))) {
		t.Fatal("Redefined CNP must equal the distinct set of CNP")
	}
}

// TestReciprocalCNPPaperExample: only reciprocally ranked pairs survive.
func TestReciprocalCNPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := sortedDistinct(g.Prune(ReciprocalCNP))
	// Hand-derived: 1-3, 2-4, 3-5, 4-6, 5-6 are ranked by both endpoints;
	// 1-4 and 2-3 only by one.
	want := pairs(0, 2, 1, 3, 2, 4, 3, 5, 4, 5)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reciprocal CNP = %v, want %v", got, want)
	}
}

// TestWNPPaperExample reproduces Figure 5: nine directed retained edges.
func TestWNPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := g.Prune(WNP)
	if len(got) != 9 {
		t.Fatalf("WNP retained %d comparisons, want 9 (Figure 5(b))", len(got))
	}
	distinct := sortedDistinct(got)
	want := pairs(0, 2, 1, 3, 2, 4, 3, 5, 4, 5)
	if !reflect.DeepEqual(distinct, want) {
		t.Fatalf("WNP distinct = %v, want %v", distinct, want)
	}
}

// TestRedefinedWNPPaperExample reproduces Figure 8: the same five pairs,
// one comparison each.
func TestRedefinedWNPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := g.Prune(RedefinedWNP)
	if len(got) != 5 {
		t.Fatalf("Redefined WNP retained %d, want 5 (Figure 8(b))", len(got))
	}
	if !reflect.DeepEqual(sortedDistinct(got), sortedDistinct(g.Prune(WNP))) {
		t.Fatal("Redefined WNP must equal the distinct set of WNP")
	}
}

// TestReciprocalWNPPaperExample reproduces Figure 9: four comparisons —
// p4-p6 is dropped because only p4 ranks it above its threshold.
func TestReciprocalWNPPaperExample(t *testing.T) {
	g := exampleGraph(t, JS)
	got := sortedDistinct(g.Prune(ReciprocalWNP))
	want := pairs(0, 2, 1, 3, 2, 4, 4, 5)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reciprocal WNP = %v, want %v (Figure 9(b))", got, want)
	}
	// Recall is intact: both duplicates survive (paper: "at no cost in
	// recall" for this example).
	gt := paperexample.GroundTruth()
	set := pairSet(got)
	for _, p := range gt.Pairs() {
		if _, ok := set[p]; !ok {
			t.Errorf("duplicate %v pruned", p)
		}
	}
}

// TestPruneInvariants checks the structural relations between the
// algorithm families on random inputs:
//
//	reciprocal ⊆ redefined = distinct(original node-centric)
//	‖reciprocal‖ ≤ ‖redefined‖ ≤ ‖original‖
func TestPruneInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		c := randomDirtyBlocks(rng, 40, 35)
		for _, scheme := range AllSchemes {
			g := NewGraph(c, scheme)
			for _, fam := range []struct {
				orig, redef, recip Algorithm
			}{
				{CNP, RedefinedCNP, ReciprocalCNP},
				{WNP, RedefinedWNP, ReciprocalWNP},
			} {
				orig := g.Prune(fam.orig)
				redef := g.Prune(fam.redef)
				recip := g.Prune(fam.recip)
				if !reflect.DeepEqual(sortedDistinct(orig), sortedDistinct(redef)) {
					t.Fatalf("%v/%v: redefined ≠ distinct(original)", scheme, fam.redef)
				}
				redefSet := pairSet(redef)
				for _, p := range recip {
					if _, ok := redefSet[p]; !ok {
						t.Fatalf("%v/%v: reciprocal pair %v not in redefined", scheme, fam.recip, p)
					}
				}
				if len(recip) > len(redef) || len(redef) > len(orig) {
					t.Fatalf("%v: cardinality ordering violated: %d > %d > %d",
						scheme, len(recip), len(redef), len(orig))
				}
				// No redundancy in the redefined/reciprocal outputs.
				for p, n := range pairSet(redef) {
					if n > 1 {
						t.Fatalf("redefined retains %v twice", p)
					}
				}
			}
		}
	}
}

// TestCEPRespectsK: CEP never retains more than K edges and fills K when
// the graph has enough edges.
func TestCEPRespectsK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randomDirtyBlocks(rng, 30, 25)
	g := NewGraph(c, JS)
	k := g.CardinalityEdgeThreshold()
	got := g.Prune(CEP)
	edges := g.NumEdges()
	want := k
	if int64(want) > edges {
		want = int(edges)
	}
	if len(got) != want {
		t.Fatalf("CEP retained %d, want %d (K=%d, |EB|=%d)", len(got), want, k, edges)
	}
}

// TestCEPKeepsHeaviest: every retained edge weighs at least as much as
// every discarded one.
func TestCEPKeepsHeaviest(t *testing.T) {
	g := exampleGraph(t, JS)
	retained := pairSet(g.Prune(CEP))
	var minRetained, maxDropped float64 = 2, -1
	g.ForEachEdge(func(i, j entity.ID, w float64) {
		if _, ok := retained[entity.MakePair(i, j)]; ok {
			if w < minRetained {
				minRetained = w
			}
		} else if w > maxDropped {
			maxDropped = w
		}
	})
	if maxDropped > minRetained {
		t.Fatalf("dropped edge (%v) heavier than retained (%v)", maxDropped, minRetained)
	}
}

// TestWEPRetainsAboveMean: all retained edges are ≥ mean; all dropped are
// below.
func TestWEPRetainsAboveMean(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := randomDirtyBlocks(rng, 30, 25)
	for _, scheme := range AllSchemes {
		g := NewGraph(c, scheme)
		var sum float64
		var count int64
		g.ForEachEdge(func(_, _ entity.ID, w float64) { sum += w; count++ })
		mean := sum / float64(count)
		retained := pairSet(g.Prune(WEP))
		g.ForEachEdge(func(i, j entity.ID, w float64) {
			_, ok := retained[entity.MakePair(i, j)]
			if ok && w < mean {
				t.Fatalf("%v: retained edge below mean", scheme)
			}
			if !ok && w >= mean {
				t.Fatalf("%v: dropped edge at/above mean", scheme)
			}
		})
	}
}

// TestOriginalWeightingSamePruning: pruning with Algorithm 2 edge
// weighting yields the same retained sets as with Algorithm 3.
func TestOriginalWeightingSamePruning(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := randomDirtyBlocks(rng, 30, 25)
	for _, alg := range AllAlgorithms {
		gOpt := NewGraph(c, JS)
		gOrig := NewGraph(c, JS)
		gOrig.OriginalWeighting = true
		opt := sortedDistinct(gOpt.Prune(alg))
		orig := sortedDistinct(gOrig.Prune(alg))
		if !reflect.DeepEqual(opt, orig) {
			t.Fatalf("%v: optimized and original weighting disagree (%d vs %d pairs)",
				alg, len(opt), len(orig))
		}
	}
}

// TestRunMeasuresOverhead smoke-tests the orchestrator.
func TestRunMeasuresOverhead(t *testing.T) {
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	res := Run(blocks, Config{Scheme: JS, Algorithm: ReciprocalWNP})
	if len(res.Pairs) != 4 {
		t.Fatalf("Run retained %d pairs, want 4", len(res.Pairs))
	}
	if res.OTime <= 0 {
		t.Fatal("OTime not measured")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range AllAlgorithms {
		s := a.String()
		if s == "" || seen[s] {
			t.Fatalf("algorithm name %q empty or duplicated", s)
		}
		seen[s] = true
	}
	for _, s := range AllSchemes {
		if s.String() == "" {
			t.Fatal("empty scheme name")
		}
	}
	if !CNP.NodeCentric() || CEP.NodeCentric() || WEP.NodeCentric() || !ReciprocalWNP.NodeCentric() {
		t.Fatal("NodeCentric misclassifies")
	}
}

func TestEdgeHeap(t *testing.T) {
	h := newEdgeHeap(3)
	for i, w := range []float64{5, 1, 3, 4, 2, 6} {
		h.offer(w, entity.ID(i), entity.ID(i+10))
	}
	if h.len() != 3 {
		t.Fatalf("len = %d, want 3", h.len())
	}
	var ws []float64
	for _, e := range h.items {
		ws = append(ws, e.w)
	}
	sort.Float64s(ws)
	if !reflect.DeepEqual(ws, []float64{4, 5, 6}) {
		t.Fatalf("heap kept %v, want top-3 {4,5,6}", ws)
	}
	if h.min() != 4 {
		t.Fatalf("min = %v, want 4", h.min())
	}
	h.reset()
	if h.len() != 0 {
		t.Fatal("reset did not clear")
	}
	zero := newEdgeHeap(0)
	zero.offer(1, 0, 1)
	if zero.len() != 0 {
		t.Fatal("zero-capacity heap accepted an edge")
	}
}

// TestNodeCentricCoverage verifies the paper's §5 justification for
// node-centric pruning: every node with at least one incident edge keeps
// at least one retained comparison under CNP, WNP and their Redefined
// variants (each node retains its best edge, and the OR semantics preserve
// it). Reciprocal pruning deliberately gives up this guarantee.
func TestNodeCentricCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		c := randomDirtyBlocks(rng, 35, 30)
		for _, scheme := range AllSchemes {
			g := NewGraph(c, scheme)
			connected := make(map[entity.ID]bool)
			g.ForEachEdge(func(i, j entity.ID, _ float64) {
				connected[i], connected[j] = true, true
			})
			for _, alg := range []Algorithm{CNP, WNP, RedefinedCNP, RedefinedWNP} {
				covered := make(map[entity.ID]bool)
				for _, p := range g.Prune(alg) {
					covered[p.A], covered[p.B] = true, true
				}
				for id := range connected {
					if !covered[id] {
						t.Fatalf("trial %d %v/%v: node %d lost all comparisons",
							trial, scheme, alg, id)
					}
				}
			}
		}
	}
}

// TestPruningOnCleanCleanDataset runs every algorithm on a Clean-Clean
// synthetic dataset and checks basic sanity plus the PC ordering between
// the weight- and cardinality-based families.
func TestPruningOnCleanCleanDataset(t *testing.T) {
	ds := datagenD1C()
	blocks := blocking.TokenBlocking{}.Build(ds.Collection)
	detect := func(alg Algorithm) (recall float64, comparisons int) {
		g := NewGraph(blocks, JS)
		pairs := g.Prune(alg)
		found := make(map[entity.Pair]struct{})
		for _, p := range pairs {
			if ds.GroundTruth.Contains(p.A, p.B) {
				found[p] = struct{}{}
			}
		}
		return float64(len(found)) / float64(ds.GroundTruth.Size()), len(pairs)
	}
	wnpPC, wnpN := detect(WNP)
	cepPC, cepN := detect(CEP)
	if wnpPC < 0.9 {
		t.Errorf("WNP recall %.3f too low", wnpPC)
	}
	if cepN >= wnpN {
		t.Errorf("CEP (%d) should retain fewer comparisons than WNP (%d)", cepN, wnpN)
	}
	if cepPC > wnpPC {
		t.Errorf("CEP recall %.3f should not exceed WNP's %.3f", cepPC, wnpPC)
	}
}

// topKSets derives every node's top-k edge set straight from the
// ForEachNode data with a plain sort under the heap's total order (weight
// descending, ties on the lexicographically smaller canonical pair) — an
// independent restatement of what edgeHeap selects.
func topKSets(g *Graph, k int) map[entity.ID]map[entity.Pair]bool {
	top := make(map[entity.ID]map[entity.Pair]bool)
	g.ForEachNode(func(i entity.ID, neighbors []entity.ID, weights []float64) {
		type ranked struct {
			p entity.Pair
			w float64
		}
		edges := make([]ranked, len(neighbors))
		for n, j := range neighbors {
			edges[n] = ranked{p: entity.MakePair(i, j), w: weights[n]}
		}
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].w != edges[b].w {
				return edges[a].w > edges[b].w
			}
			if edges[a].p.A != edges[b].p.A {
				return edges[a].p.A < edges[b].p.A
			}
			return edges[a].p.B < edges[b].p.B
		})
		if k < len(edges) {
			edges = edges[:k]
		}
		set := make(map[entity.Pair]bool, len(edges))
		for _, e := range edges {
			set[e.p] = true
		}
		top[i] = set
	})
	return top
}

// TestReciprocalCNPSerialSemantics pins the serial path to the §5.2
// definition on random Dirty and Clean-Clean inputs: a comparison survives
// Reciprocal CNP iff BOTH endpoints rank the edge in their top-k, and
// Redefined CNP iff EITHER does — each retained exactly once.
func TestReciprocalCNPSerialSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		for _, c := range []*struct {
			name   string
			blocks func() *block.Collection
		}{
			{"dirty", func() *block.Collection { return randomDirtyBlocks(rng, 40, 30) }},
			{"clean", func() *block.Collection { return randomCleanBlocks(rng, 18, 40, 30) }},
		} {
			blocks := c.blocks()
			for _, scheme := range AllSchemes {
				g := NewGraph(blocks, scheme)
				top := topKSets(g, g.CardinalityNodeThreshold())
				var wantRecip, wantRedef []entity.Pair
				g.ForEachEdge(func(i, j entity.ID, _ float64) {
					p := entity.MakePair(i, j)
					if top[i][p] && top[j][p] {
						wantRecip = append(wantRecip, p)
					}
					if top[i][p] || top[j][p] {
						wantRedef = append(wantRedef, p)
					}
				})
				if got := sortedDistinct(g.Prune(ReciprocalCNP)); !reflect.DeepEqual(got, sortedDistinct(wantRecip)) {
					t.Fatalf("%s/%v: Reciprocal CNP = %v, want %v", c.name, scheme, got, sortedDistinct(wantRecip))
				}
				if got := sortedDistinct(g.Prune(RedefinedCNP)); !reflect.DeepEqual(got, sortedDistinct(wantRedef)) {
					t.Fatalf("%s/%v: Redefined CNP = %v, want %v", c.name, scheme, got, sortedDistinct(wantRedef))
				}
			}
		}
	}
}

// TestRedefinedWNPSerialSemantics pins the serial path to the Algorithm 5
// definition on random Dirty and Clean-Clean inputs: with every
// neighborhood's mean weight as its threshold, Redefined WNP retains an
// edge (once) iff it meets either endpoint's threshold, Reciprocal WNP iff
// it meets both.
func TestRedefinedWNPSerialSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 4; trial++ {
		for _, c := range []*struct {
			name   string
			blocks func() *block.Collection
		}{
			{"dirty", func() *block.Collection { return randomDirtyBlocks(rng, 40, 30) }},
			{"clean", func() *block.Collection { return randomCleanBlocks(rng, 18, 40, 30) }},
		} {
			blocks := c.blocks()
			for _, scheme := range AllSchemes {
				g := NewGraph(blocks, scheme)
				thresholds := make(map[entity.ID]float64)
				g.ForEachNode(func(i entity.ID, _ []entity.ID, weights []float64) {
					thresholds[i] = g.meanOf(weights)
				})
				var wantRedef, wantRecip []entity.Pair
				g.ForEachEdge(func(i, j entity.ID, w float64) {
					p := entity.MakePair(i, j)
					okI, okJ := w >= thresholds[i], w >= thresholds[j]
					if okI || okJ {
						wantRedef = append(wantRedef, p)
					}
					if okI && okJ {
						wantRecip = append(wantRecip, p)
					}
				})
				if got := sortedDistinct(g.Prune(RedefinedWNP)); !reflect.DeepEqual(got, sortedDistinct(wantRedef)) {
					t.Fatalf("%s/%v: Redefined WNP = %v, want %v", c.name, scheme, got, sortedDistinct(wantRedef))
				}
				if got := sortedDistinct(g.Prune(ReciprocalWNP)); !reflect.DeepEqual(got, sortedDistinct(wantRecip)) {
					t.Fatalf("%s/%v: Reciprocal WNP = %v, want %v", c.name, scheme, got, sortedDistinct(wantRecip))
				}
			}
		}
	}
}
