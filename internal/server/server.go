// Package server is the online Entity Resolution query service: a
// concurrency-safe façade over the incremental Resolver that turns the
// one-shot cmd/stream workflow into an always-on serving layer.
//
// Three serving-stack shapes make it production-grade:
//
//   - Micro-batching. Concurrent /v1/resolve requests are coalesced into
//     one index pass: a single batcher goroutine — the only writer —
//     drains the admission queue for up to BatchWindow or MaxBatch
//     arrivals and feeds them to Resolver.AddBatch under one lock
//     acquisition. Responses are identical to processing the same
//     arrival order one at a time.
//   - Backpressure. Admission is a bounded queue; when it is full the
//     server sheds load immediately (ErrQueueFull → HTTP 429 with
//     Retry-After) instead of building an unbounded backlog. Accepted
//     requests are never dropped: every queued job is answered, even
//     during graceful shutdown.
//   - Snapshot hot-swap. The resolver behind the façade can be replaced
//     atomically (Reload / POST /v1/admin/reload) with one built from a
//     pre-blocked internal/store snapshot. The swap fences on the same
//     lock the batcher writes under, so in-flight requests complete
//     against whichever index they were batched into and none fail.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"metablocking/internal/budget"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/obs"
	"metablocking/internal/par"
	"metablocking/internal/shard"
	"metablocking/internal/store"
)

// Typed errors of the façade; test with errors.Is. The HTTP layer maps
// ErrQueueFull to 429 + Retry-After and ErrDraining to 503.
var (
	// ErrQueueFull is returned when the admission queue is at capacity.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining is returned once Close has begun: the server finishes
	// accepted work but admits nothing new.
	ErrDraining = errors.New("server: shutting down")
	// ErrSchemeMismatch is returned by ReloadFile when the snapshot's
	// weighting scheme differs from the serving scheme.
	ErrSchemeMismatch = errors.New("server: snapshot scheme differs from serving scheme")
)

// Counter and gauge names the server reports into its registry, alongside
// the per-endpoint http.* counters from obs.HTTPMetrics.
const (
	CtrAccepted      = "server.accepted"
	CtrRejectedFull  = "server.rejected_full"
	CtrRejectedDrain = "server.rejected_draining"
	CtrBatches       = "server.batches"
	CtrBatchedProfs  = "server.batch_profiles"
	CtrCandidates    = "server.candidates"
	CtrReloads       = "server.reloads"
	CtrSnapshots     = "server.snapshots"
	CtrPanics        = "server.panics_recovered"
	CtrResolveFailed = "server.resolve_failures"
	CtrDegradedSrv   = "server.degraded_served"
	CtrWalSyncFailed = "server.wal_sync_failures"
	CtrCorruptLoads  = "store.corrupt_loads"
	GaugeProfiles    = "server.profiles"
	GaugeQueueCap    = "server.queue_cap"
	GaugeDegraded    = "server.degraded"
	TextLastError    = "server.last_error"
)

// FaultResolve is the fault-injection site consulted once per admitted
// profile inside the single-writer index pass. Chaos tests (and the
// -fault flag of cmd/serve) arm errors, delays or panics here.
const FaultResolve = "server.resolve"

// FaultStream is the fault-injection site consulted before each batch
// flush of a streamed resolve. A delay spec pins a stream mid-flight —
// how chaos tests hold a response open across a SIGKILL — and an error
// spec aborts the stream as a vanished client would.
const FaultStream = "server.stream"

// Config.WALSync policies (cmd/serve -wal-sync).
const (
	WALSyncAlways   = "always"
	WALSyncInterval = "interval"
	WALSyncOff      = "off"
)

// Config tunes the serving façade. The zero value gets sensible defaults.
type Config struct {
	// Resolver configures the incremental index (scheme, K, block cap).
	Resolver incremental.Config
	// Shards splits the serving index into N single-writer partitions
	// behind the internal/shard scatter-gather coordinator. 0 or 1
	// serves the monolithic single-index resolver; answers are
	// bit-identical at every shard count.
	Shards int
	// ShardQueueDepth bounds each shard actor's admission queue when
	// Shards > 1. Default 2.
	ShardQueueDepth int
	// BatchWindow is how long the batcher waits for more arrivals after
	// the first one before flushing a partial batch. Default 2ms.
	BatchWindow time.Duration
	// MaxBatch caps arrivals per index pass. Default 64.
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue sheds load
	// with ErrQueueFull. Default 1024.
	QueueDepth int
	// RetryAfter is the advisory client back-off sent with 429 responses.
	// Default 1s.
	RetryAfter time.Duration
	// Metrics receives the server's counters; nil creates a private
	// registry (exposed at /metrics either way).
	//
	// Deprecated: prefer the WithMetrics option to New. The field keeps
	// working for one release; an option takes precedence when both are
	// set.
	Metrics *obs.Metrics
	// Fault is consulted at the server's named fault sites (FaultResolve).
	// Nil is a no-op: zero cost on the hot path.
	//
	// Deprecated: prefer the WithFault option to New. The field keeps
	// working for one release; an option takes precedence when both are
	// set.
	Fault *fault.Injector
	// RequestTimeout bounds each HTTP request handled by Handler with a
	// per-request context deadline. Zero disables the deadline.
	RequestTimeout time.Duration
	// BreakerThreshold is the number of consecutive resolve failures that
	// opens the degraded-mode circuit. Zero defaults to 5; negative
	// disables the breaker entirely.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a single
	// half-open probe is allowed through. Default 1s.
	BreakerCooldown time.Duration

	// Tiers configures the budget-aware streaming path's SLA classes:
	// per-tier admission pools (in front of the bounded queue) and the
	// default budgets applied to streamed requests that set none. Nil
	// defaults to unbounded "interactive" and "batch" tiers with no
	// default budgets, so streaming stays unbudgeted unless a request
	// asks — cmd/serve installs real bounds.
	Tiers []budget.Tier
	// StreamBatch is how many ranked candidates a streamed resolve
	// flushes per frame. Default 16.
	StreamBatch int

	// DiskDir, when set, serves the out-of-core index from this
	// directory: memtable + delta segments + background compaction
	// (internal/diskindex) behind the shard coordinator, at any Shards
	// count including 1. The directory is recovered at startup to its
	// newest consistent checkpoint; /v1/admin/snapshot checkpoints it.
	DiskDir string
	// MemtableBudget caps any one shard's unsealed memtable (estimated
	// bytes); exceeding it auto-checkpoints the index. Disk mode only.
	// Default 32 MiB.
	MemtableBudget int
	// DiskCacheBytes budgets each shard's posting-page cache. Disk mode
	// only. Default 8 MiB.
	DiskCacheBytes int
	// DiskCompactAfter is the sealed-segment count that triggers a
	// shard's background compaction. Disk mode only. Default 4.
	DiskCompactAfter int
	// WALDisabled turns the per-shard write-ahead log off entirely: a
	// crash loses every commit acknowledged since the last checkpoint
	// (PR 8's rollback semantics). Disk mode only; surfaces a
	// wal_disabled warning in /v1/admin/status.
	WALDisabled bool
	// WALSync picks the log's fsync policy — cmd/serve -wal-sync:
	//
	//	"always"    group commit: one fsync per micro-batch, before any
	//	            commit in it is acknowledged. Acknowledged writes
	//	            survive process crash AND power loss. Default.
	//	"interval"  fsync every WALSyncInterval. Acknowledged writes
	//	            survive process crash (each append reaches the OS
	//	            before the ack); power loss can lose the last
	//	            interval.
	//	"off"       never fsync outside close/checkpoint. Same process-
	//	            crash guarantee as interval; power loss can lose
	//	            anything after the last checkpoint.
	//
	// Disk mode only.
	WALSync string
	// WALSyncInterval is the "interval" policy's fsync period.
	// Default 100ms.
	WALSyncInterval time.Duration

	// breakerNow overrides the breaker's clock in tests.
	breakerNow func() time.Time
}

// Option adjusts a server at construction time — the home for
// cross-cutting dependencies (metrics, fault injection, clocks) that
// used to be Config fields, and for test-only hooks that never belonged
// in the public struct.
type Option func(*Config)

// WithMetrics directs the server's counters and gauges into m.
func WithMetrics(m *obs.Metrics) Option {
	return func(c *Config) { c.Metrics = m }
}

// WithFault installs a fault injector, consulted at the server's named
// sites (FaultResolve, and the per-shard shard.GatherSite /
// shard.CommitSite when Shards > 1).
func WithFault(in *fault.Injector) Option {
	return func(c *Config) { c.Fault = in }
}

// WithClock overrides the circuit breaker's time source — the test hook
// that lets chaos suites step through open/half-open/closed transitions
// deterministically.
func WithClock(now func() time.Time) Option {
	return func(c *Config) { c.breakerNow = now }
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Resolver.MaxBlockSize == 0 {
		// Mirror the resolver's own default so /v1/admin/status reports
		// the effective value, not the zero placeholder.
		c.Resolver.MaxBlockSize = 1000
	}
	if (c.Shards > 1 || c.DiskDir != "") && c.ShardQueueDepth <= 0 {
		c.ShardQueueDepth = 2
	}
	if c.DiskDir != "" {
		if c.MemtableBudget <= 0 {
			c.MemtableBudget = 32 << 20
		}
		if c.DiskCacheBytes <= 0 {
			c.DiskCacheBytes = 8 << 20
		}
		if c.DiskCompactAfter <= 0 {
			c.DiskCompactAfter = 4
		}
		if c.WALSync == "" {
			c.WALSync = WALSyncAlways
		}
		if c.WALSyncInterval <= 0 {
			c.WALSyncInterval = 100 * time.Millisecond
		}
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0 // breaker disabled
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.Tiers == nil {
		c.Tiers = []budget.Tier{{Name: budget.TierInteractive}, {Name: budget.TierBatch}}
	}
	if c.StreamBatch <= 0 {
		c.StreamBatch = budget.DefaultBatch
	}
	return c
}

// Resolution is one resolve answer: the assigned ID and candidates, plus
// whether the request was served degraded — read-only against the last
// good index, with no ID assigned (ID is -1).
type Resolution struct {
	incremental.BatchResult
	Degraded bool
}

// jobResult is what the batcher sends back for one admitted job: either a
// Resolution or the per-request failure (injected fault, recovered panic).
type jobResult struct {
	res Resolution
	err error
}

// job is one admitted resolve request. reply is buffered so the batcher
// never blocks on a client that gave up waiting. A resume job is the
// read-only re-gather behind cursor resumption: it excludes the named
// already-committed profile and never mutates the index, but still rides
// the batcher so it is serialized with writers (the resolvers' gather
// scratch is single-caller).
type job struct {
	profile entity.Profile
	resume  bool
	exclude entity.ID
	reply   chan jobResult
}

// Server is the concurrency-safe serving façade. One batcher goroutine is
// the single writer to the resolver; handler goroutines are readers that
// fence on mu. Create with New, stop with Close.
type Server struct {
	cfg     Config
	metrics *obs.Metrics

	// mu fences the resolver pointer and its state: the batcher's flush
	// and Reload's swap take the write lock, read-only accessors the
	// read lock. The sharded backend's coordinator is single-caller, so
	// operations that walk its actors (Snapshot, Stats) take the write
	// lock even though they don't mutate index state.
	mu       sync.RWMutex
	resolver incremental.Index

	// breaker gates the write path behind degraded mode; consulted only
	// by the batcher, per job.
	breaker *breaker

	queue chan job

	// replyPool recycles the buffered reply channels of completed
	// requests. A channel abandoned by a caller that gave up (ctx.Done)
	// is never returned to the pool — the batcher's late answer lands in
	// its buffer and the channel is garbage — so a pooled channel is
	// always empty and can never deliver a stale result.
	replyPool sync.Pool

	// batchBuf and outcomeBuf are the batcher goroutine's reusable batch
	// scratch: one micro-batch pass allocates nothing in steady state.
	// Only the batcher touches them.
	batchBuf   []job
	outcomeBuf []jobResult

	// submitMu serializes admission against the start of a drain: once
	// Close sets draining under the write lock, no submitter can still
	// be inside the enqueue critical section, so the batcher's final
	// drain pass sees every accepted job.
	submitMu sync.RWMutex
	draining bool

	// Budget-aware streaming state: the per-tier admission pools, the
	// cursor signer (per-process key — restart invalidates cursors), and
	// the snapshot generation cursors are cut against, advanced by every
	// reload and checkpoint.
	pools      *budget.Pools
	signer     *budget.Signer
	generation atomic.Uint64

	// walAlways is the precomputed group-commit flag: disk mode, WAL on,
	// sync policy "always" — every flush ends with a fsync barrier
	// before its commits are acknowledged.
	walAlways bool

	stopc chan struct{}
	done  chan struct{}
}

// New validates the configuration, builds an empty serving index —
// monolithic, or sharded behind the internal/shard coordinator when
// cfg.Shards > 1 — and starts the batcher. Options apply after the
// struct fields, so WithMetrics/WithFault/WithClock win over the
// deprecated Config fields. Call Close to stop the server.
func New(cfg Config, opts ...Option) (*Server, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	if cfg.DiskDir != "" {
		switch cfg.WALSync {
		case WALSyncAlways, WALSyncInterval, WALSyncOff:
		default:
			return nil, fmt.Errorf("server: unknown wal sync policy %q (want always, interval or off)", cfg.WALSync)
		}
	}
	signer, err := budget.NewSigner()
	if err != nil {
		return nil, err
	}
	r, err := newIndex(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		resolver: r,
		queue:    make(chan job, cfg.QueueDepth),
		batchBuf: make([]job, 0, cfg.MaxBatch),
		pools:    budget.NewPools(cfg.Tiers...),
		signer:   signer,
		stopc:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.breakerNow, func(degraded bool) {
		if degraded {
			s.metrics.Gauge(GaugeDegraded).Set(1)
		} else {
			s.metrics.Gauge(GaugeDegraded).Set(0)
		}
	})
	s.metrics.Gauge(GaugeQueueCap).Set(int64(cfg.QueueDepth))
	s.metrics.Gauge(GaugeProfiles).Set(0)
	s.metrics.Gauge(GaugeDegraded).Set(0)
	if cfg.DiskDir != "" && !cfg.WALDisabled {
		s.walAlways = cfg.WALSync == WALSyncAlways
		if cfg.WALSync == WALSyncInterval {
			go s.walSyncLoop()
		}
	}
	go s.batcher()
	return s, nil
}

// walSyncLoop is the "interval" sync policy: a ticker fsyncs every
// shard's write-ahead log under the same lock the batcher writes with.
// Errors surface through metrics (the affected commits were already
// acknowledged — that is the policy's documented loss window).
func (s *Server) walSyncLoop() {
	t := time.NewTicker(s.cfg.WALSyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			var err error
			s.mu.Lock()
			if g, ok := s.resolver.(*shard.Group); ok {
				err = g.SyncWAL()
			}
			s.mu.Unlock()
			if err != nil && !errors.Is(err, shard.ErrClosed) {
				s.metrics.Counter(CtrWalSyncFailed).Inc()
				s.metrics.Text(TextLastError).Set(err.Error())
			}
		case <-s.stopc:
			return
		}
	}
}

// newIndex builds the serving backend the configuration asks for.
func newIndex(cfg Config) (incremental.Index, error) {
	if cfg.DiskDir != "" {
		return newDiskIndex(cfg)
	}
	if cfg.Shards > 1 {
		return shard.New(shardConfig(cfg))
	}
	return incremental.NewResolver(cfg.Resolver)
}

// shardConfig derives the coordinator configuration from the server's.
// The gather hook feeds the budget subsystem's work accounting: every
// shard reply's weighed-neighbor count lands in budget.gathered as it
// arrives (the single-index path mirrors this via LastWeighed in flush).
func shardConfig(cfg Config) shard.Config {
	gathered := cfg.Metrics.Counter(budget.CtrGathered)
	return shard.Config{
		Resolver:       cfg.Resolver,
		Shards:         cfg.Shards,
		QueueDepth:     cfg.ShardQueueDepth,
		Fault:          cfg.Fault,
		Metrics:        cfg.Metrics,
		MemtableBudget: cfg.MemtableBudget,
		OnGather:       func(_, weighed int) { gathered.Add(int64(weighed)) },
	}
}

// Resolve admits the profile, waits for its micro-batch to flush, and
// returns the assigned ID and pruned candidates. It returns ErrQueueFull
// when the admission queue is at capacity, ErrDraining after Close has
// begun, and ctx.Err() if the caller gives up first — in which case the
// accepted request is still processed (its ID is consumed) and only the
// reply is discarded. A per-request failure on the index pass — an
// injected fault or a recovered panic (*par.PanicError) — is returned as
// that request's error; batch-mates are unaffected. While the circuit
// breaker is open the answer is served degraded: read-only candidates
// from the last good index, ID -1, Degraded true.
func (s *Server) Resolve(ctx context.Context, p entity.Profile) (Resolution, error) {
	return s.submit(ctx, job{profile: p})
}

// Resume is the read-only re-gather behind cursor resumption: it
// recomputes the ranked candidates the already-committed profile exclude
// received from its own resolve (see incremental.Resolver.PeekExcluding),
// without assigning an ID or mutating the index. It rides the same
// admission queue and batcher as Resolve — the underlying gather scratch
// is single-caller — and is subject to the same backpressure errors. The
// returned Resolution carries exclude as its ID.
func (s *Server) Resume(ctx context.Context, p entity.Profile, exclude entity.ID) (Resolution, error) {
	return s.submit(ctx, job{profile: p, resume: true, exclude: exclude})
}

// submit admits one job and waits for the batcher's answer.
func (s *Server) submit(ctx context.Context, j job) (Resolution, error) {
	reply, _ := s.replyPool.Get().(chan jobResult)
	if reply == nil {
		reply = make(chan jobResult, 1)
	}
	j.reply = reply
	s.submitMu.RLock()
	if s.draining {
		s.submitMu.RUnlock()
		s.replyPool.Put(reply)
		s.metrics.Counter(CtrRejectedDrain).Inc()
		return Resolution{}, ErrDraining
	}
	select {
	case s.queue <- j:
		s.submitMu.RUnlock()
	default:
		s.submitMu.RUnlock()
		s.replyPool.Put(reply)
		s.metrics.Counter(CtrRejectedFull).Inc()
		return Resolution{}, ErrQueueFull
	}
	s.metrics.Counter(CtrAccepted).Inc()
	select {
	case out := <-j.reply:
		s.replyPool.Put(reply)
		return out.res, out.err
	case <-ctx.Done():
		// The batcher's answer still lands in the abandoned channel's
		// buffer; the channel is dropped, not pooled.
		return Resolution{}, ctx.Err()
	}
}

// Degraded reports whether the circuit breaker currently has the server
// answering read-only from the last good index.
func (s *Server) Degraded() bool { return s.breaker.degraded() }

// Reload atomically swaps the serving index for one rebuilt from the
// snapshot — at the server's configured shard count, regardless of how
// the snapshot was produced — and returns its profile count. The swap
// waits for the batch in flight (if any) to finish; requests already
// admitted but not yet batched are resolved against the new index. IDs
// restart at the snapshot's size. The replaced index is closed (a
// sharded backend owns goroutines); any down shards are forgotten with
// it, so reload doubles as the per-shard recovery lever.
func (s *Server) Reload(snap *incremental.Snapshot) (int, error) {
	if s.diskMode() {
		return s.diskReload(snap)
	}
	var r incremental.Index
	var err error
	if s.cfg.Shards > 1 {
		r, err = shard.FromSnapshot(snap, shardConfig(s.cfg))
	} else {
		r, err = incremental.FromSnapshot(snap)
	}
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	old := s.resolver
	s.resolver = r
	n := r.Size()
	s.mu.Unlock()
	old.Close()
	// A fresh known-good index closes the degraded-mode circuit: reload is
	// the operator's recovery lever.
	s.breaker.reset()
	// The swap orphans the previous snapshot generation: outstanding
	// resume cursors were cut against an index that no longer exists.
	s.generation.Add(1)
	s.metrics.Counter(CtrReloads).Inc()
	s.metrics.Gauge(GaugeProfiles).Set(int64(n))
	return n, nil
}

// Generation is the snapshot generation resume cursors are bound to.
// Every successful reload and disk checkpoint advances it, invalidating
// all outstanding cursors.
func (s *Server) Generation() uint64 { return s.generation.Load() }

// ReloadFile is Reload from a store resolver-snapshot file of either
// layout — a plain "resolver" artifact or a sharded manifest+segments.
// The artifact is fully loaded and verified BEFORE the swap: a corrupt
// or version-mismatched file leaves the live index untouched (the HTTP
// layer maps it to 422).
func (s *Server) ReloadFile(path string) (int, error) {
	snap, err := store.LoadAnyResolverFile(path)
	if err != nil {
		if errors.Is(err, store.ErrCorruptArtifact) || errors.Is(err, store.ErrVersionMismatch) {
			s.metrics.Counter(CtrCorruptLoads).Inc()
			s.metrics.Text(TextLastError).Set(err.Error())
		}
		return 0, err
	}
	if snap.Config.Scheme != s.cfg.Resolver.Scheme {
		return 0, fmt.Errorf("%w: snapshot %v, serving %v",
			ErrSchemeMismatch, snap.Config.Scheme, s.cfg.Resolver.Scheme)
	}
	return s.Reload(snap)
}

// Size returns the number of profiles in the serving index.
func (s *Server) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolver.Size()
}

// Snapshot deep-copies the serving index in canonical (shard-count
// independent) form, fenced against the writer — the artifact Reload
// and /v1/admin/reload consume. It takes the write lock because the
// sharded coordinator is single-caller.
func (s *Server) Snapshot() *incremental.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolver.Snapshot()
}

// SnapshotFile persists the current serving index at path and returns
// the number of profiles it holds. A sharded backend writes the sharded
// artifact — per-shard checksummed segments plus a manifest committed
// last — a monolithic one the plain "resolver" artifact. Either file
// can be fed back to -snapshot at startup or to /v1/admin/reload, at
// any shard count. In disk mode an empty path means "checkpoint in
// place" — durability lives in the serving directory itself — while a
// non-empty path additionally exports the portable sharded artifact.
func (s *Server) SnapshotFile(path string) (int, error) {
	if s.diskMode() && path == "" {
		return s.Checkpoint()
	}
	s.mu.Lock()
	g, sharded := s.resolver.(*shard.Group)
	var segs []*incremental.PartitionSnapshot
	var snap *incremental.Snapshot
	var n int
	if sharded {
		segs = g.PartitionSnapshots()
		for _, seg := range segs {
			n += len(seg.Profiles)
		}
	} else {
		snap = s.resolver.Snapshot()
		n = len(snap.Profiles)
	}
	s.mu.Unlock()
	var err error
	if sharded {
		err = store.SaveShardedResolverFile(path, s.cfg.Resolver, segs)
	} else {
		err = store.SaveResolverFile(path, snap)
	}
	if err != nil {
		return 0, err
	}
	s.metrics.Counter(CtrSnapshots).Inc()
	return n, nil
}

// ConfigStatus is the effective (post-defaults) configuration as served
// by GET /v1/admin/status — the introspectable replacement for fishing
// tunables out of /debug/vars.
type ConfigStatus struct {
	Scheme           string `json:"scheme"`
	K                int    `json:"k"`
	MaxBlockSize     int    `json:"max_block_size"`
	MinTokenLength   int    `json:"min_token_length"`
	Shards           int    `json:"shards"`
	ShardQueueDepth  int    `json:"shard_queue_depth,omitempty"`
	BatchWindowMs    int64  `json:"batch_window_ms"`
	MaxBatch         int    `json:"max_batch"`
	QueueDepth       int    `json:"queue_depth"`
	RetryAfterMs     int64  `json:"retry_after_ms"`
	RequestTimeoutMs int64  `json:"request_timeout_ms"`
	BreakerThreshold int    `json:"breaker_threshold"`
	BreakerCooldownMs int64 `json:"breaker_cooldown_ms"`
	StreamBatch      int    `json:"stream_batch"`

	// Disk-mode knobs; omitted when serving in-memory.
	DiskDir          string `json:"disk_dir,omitempty"`
	MemtableBudget   int    `json:"memtable_budget,omitempty"`
	DiskCacheBytes   int    `json:"disk_cache_bytes,omitempty"`
	DiskCompactAfter int    `json:"disk_compact_after,omitempty"`
	WalSync          string `json:"wal_sync,omitempty"`
	WalSyncIntervalMs int64 `json:"wal_sync_interval_ms,omitempty"`
	WalDisabled      bool   `json:"wal_disabled,omitempty"`
}

// Status is the GET /v1/admin/status payload: effective configuration,
// serving state, and — when sharded — per-shard gauges.
type Status struct {
	Config   ConfigStatus `json:"config"`
	Profiles int          `json:"profiles"`
	Ready    bool         `json:"ready"`
	Degraded bool         `json:"degraded"`
	Breaker  string       `json:"breaker"`
	// Checkpoint is the last fully committed disk checkpoint id; absent
	// when serving in-memory.
	Checkpoint uint64       `json:"checkpoint,omitempty"`
	Shards     []shard.Stat `json:"shards,omitempty"`
	// Generation is the snapshot generation resume cursors are bound to;
	// Tiers describes the budget-aware streaming path's admission pools.
	Generation uint64            `json:"generation"`
	Tiers      []budget.TierStat `json:"tiers,omitempty"`
	// Warnings flags configurations that trade durability for speed
	// (e.g. "wal_disabled"), so an operator auditing the fleet sees the
	// loss window without reading flag docs.
	Warnings []string `json:"warnings,omitempty"`
}

// Status assembles the admin status snapshot. Like Snapshot it takes the
// write lock, because walking the sharded coordinator's actors is a
// single-caller operation.
func (s *Server) Status() Status {
	cfg := s.cfg
	st := Status{
		Config: ConfigStatus{
			Scheme:            cfg.Resolver.Scheme.String(),
			K:                 cfg.Resolver.K,
			MaxBlockSize:      cfg.Resolver.MaxBlockSize,
			MinTokenLength:    cfg.Resolver.MinTokenLength,
			Shards:            cfg.Shards,
			BatchWindowMs:     cfg.BatchWindow.Milliseconds(),
			MaxBatch:          cfg.MaxBatch,
			QueueDepth:        cfg.QueueDepth,
			RetryAfterMs:      cfg.RetryAfter.Milliseconds(),
			RequestTimeoutMs:  cfg.RequestTimeout.Milliseconds(),
			BreakerThreshold:  cfg.BreakerThreshold,
			BreakerCooldownMs: cfg.BreakerCooldown.Milliseconds(),
			StreamBatch:       cfg.StreamBatch,
			DiskDir:           cfg.DiskDir,
			MemtableBudget:    cfg.MemtableBudget,
			DiskCacheBytes:    cfg.DiskCacheBytes,
			DiskCompactAfter:  cfg.DiskCompactAfter,
		},
		Ready:      s.Ready(),
		Degraded:   s.breaker.degraded(),
		Breaker:    s.breaker.stateString(),
		Generation: s.generation.Load(),
		Tiers:      s.pools.Stats(),
	}
	if cfg.DiskDir != "" {
		if cfg.WALDisabled {
			st.Config.WalDisabled = true
			st.Warnings = append(st.Warnings, "wal_disabled: acknowledged writes since the last checkpoint are lost on crash")
		} else {
			st.Config.WalSync = cfg.WALSync
			if cfg.WALSync == WALSyncInterval {
				st.Config.WalSyncIntervalMs = cfg.WALSyncInterval.Milliseconds()
			}
			if cfg.WALSync == WALSyncOff {
				st.Warnings = append(st.Warnings, "wal_sync=off: power loss may drop acknowledged writes since the last rotation (SIGKILL loses nothing)")
			}
		}
	}
	s.mu.Lock()
	st.Profiles = s.resolver.Size()
	if g, ok := s.resolver.(*shard.Group); ok {
		st.Config.ShardQueueDepth = g.Config().QueueDepth
		st.Checkpoint = g.Checkpointed()
		st.Shards = g.Stats()
	}
	s.mu.Unlock()
	return st
}

// Ready reports whether the server is accepting requests.
func (s *Server) Ready() bool {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	return !s.draining
}

// Metrics returns the server's registry (never nil after New).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Close drains gracefully: new requests are rejected with ErrDraining,
// every already-accepted request is answered, the batcher exits, and
// the serving index is closed (stopping shard actors, if any). Safe to
// call more than once.
func (s *Server) Close() error {
	s.submitMu.Lock()
	already := s.draining
	s.draining = true
	s.submitMu.Unlock()
	if !already {
		close(s.stopc)
	}
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolver.Close()
}

// batcher is the single writer: it owns every mutation of the resolver.
func (s *Server) batcher() {
	defer close(s.done)
	for {
		select {
		case first := <-s.queue:
			s.flush(s.fill(first))
		case <-s.stopc:
			// draining is set before stopc closes and submitters check
			// it under submitMu, so the queue can only shrink now.
			for {
				select {
				case first := <-s.queue:
					s.flush(s.fillQueued(first))
				default:
					return
				}
			}
		}
	}
}

// fill gathers a micro-batch: the first job plus whatever else arrives
// within BatchWindow, capped at MaxBatch. The batch is built in the
// batcher-owned scratch buffer; flush returns it after answering.
func (s *Server) fill(first job) []job {
	batch := append(s.batchBuf[:0], first)
	if s.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			batch = append(batch, j)
		case <-timer.C:
			return batch
		case <-s.stopc:
			// Finish this batch immediately; the drain loop answers the
			// rest of the queue.
			return batch
		}
	}
	return batch
}

// fillQueued gathers a batch without waiting — used by the drain loop,
// when no new arrivals are possible.
func (s *Server) fillQueued(first job) []job {
	batch := append(s.batchBuf[:0], first)
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// flush runs one index pass over the batch and answers every job. The
// write lock is taken once per batch — this is the micro-batching win —
// and is the same lock Reload swaps under. Within the pass each job is
// processed by a guarded addOne (AddBatch is semantically that same
// loop), so an injected fault or a panic fails only its own request:
// batch-mates still resolve, the batcher survives, and the breaker counts
// the failure toward degraded mode.
func (s *Server) flush(batch []job) {
	outcomes := s.outcomeBuf
	if cap(outcomes) < len(batch) {
		outcomes = make([]jobResult, len(batch))
	} else {
		outcomes = outcomes[:len(batch)]
	}
	s.mu.Lock()
	lastWeighed, _ := s.resolver.(interface{ LastWeighed() int })
	var gathered int64
	for i, j := range batch {
		if j.resume {
			// Read-only: no breaker interaction, no ID consumed.
			outcomes[i] = s.resumeOne(j)
		} else {
			proceed, probe := s.breaker.allow()
			if !proceed {
				outcomes[i] = jobResult{res: s.peekOne(j.profile)}
			} else {
				res, err := s.addOne(j.profile)
				s.breaker.result(probe, err != nil)
				outcomes[i] = jobResult{res: Resolution{BatchResult: res}, err: err}
			}
		}
		if lastWeighed != nil && outcomes[i].err == nil {
			// Single-index gather accounting; the sharded backends report
			// through the coordinator's OnGather hook instead.
			gathered += int64(lastWeighed.LastWeighed())
		}
	}
	if s.walAlways {
		s.syncWALLocked(batch, outcomes)
	}
	size := s.resolver.Size()
	s.mu.Unlock()
	if gathered > 0 {
		s.metrics.Counter(budget.CtrGathered).Add(gathered)
	}

	candidates, degraded, failed := 0, 0, 0
	for i, j := range batch {
		out := outcomes[i]
		switch {
		case out.err != nil:
			failed++
			s.metrics.Text(TextLastError).Set(out.err.Error())
		case out.res.Degraded:
			degraded++
			candidates += len(out.res.Candidates)
		default:
			candidates += len(out.res.Candidates)
		}
		j.reply <- out
	}
	s.metrics.Counter(CtrBatches).Inc()
	s.metrics.Counter(CtrBatchedProfs).Add(int64(len(batch)))
	s.metrics.Counter(CtrCandidates).Add(int64(candidates))
	s.metrics.Counter(CtrResolveFailed).Add(int64(failed))
	s.metrics.Counter(CtrDegradedSrv).Add(int64(degraded))
	s.metrics.Gauge(GaugeProfiles).Set(int64(size))

	// Return the scratch with its references dropped, so completed
	// profiles and candidate slices are collectable before the next batch.
	clear(batch)
	clear(outcomes)
	s.batchBuf = batch[:0]
	s.outcomeBuf = outcomes[:0]
}

// syncWALLocked is the group-commit barrier of the "always" sync
// policy: after the batch's commits land in the memtables and before
// any reply is sent, every shard's write-ahead log is fsynced once —
// one barrier amortized over the whole micro-batch. If the barrier
// fails, the commits that rode on it cannot be acknowledged as
// durable, so their successful outcomes are rewritten into errors.
// The commits themselves stand (the IDs are consumed); a client that
// retries observes at-least-once semantics, same as a response lost in
// transit. Called with s.mu held.
func (s *Server) syncWALLocked(batch []job, outcomes []jobResult) {
	committed := false
	for i, j := range batch {
		if !j.resume && outcomes[i].err == nil && !outcomes[i].res.Degraded && outcomes[i].res.ID >= 0 {
			committed = true
			break
		}
	}
	if !committed {
		return
	}
	g, ok := s.resolver.(*shard.Group)
	if !ok {
		return
	}
	err := g.SyncWAL()
	if err == nil {
		return
	}
	s.metrics.Counter(CtrWalSyncFailed).Inc()
	for i, j := range batch {
		if !j.resume && outcomes[i].err == nil && !outcomes[i].res.Degraded && outcomes[i].res.ID >= 0 {
			outcomes[i] = jobResult{err: fmt.Errorf("server: wal sync: %w", err)}
		}
	}
}

// addOne is one guarded index pass for a single admitted profile: the
// fault site fires first, then the resolver's Add. A panic — injected or
// genuine — is recovered into a *par.PanicError so one poisoned request
// cannot kill the batcher or fail its batch-mates. Called with s.mu held.
func (s *Server) addOne(p entity.Profile) (res incremental.BatchResult, err error) {
	defer func() {
		if pe := par.Recovered(recover()); pe != nil {
			s.metrics.Counter(CtrPanics).Inc()
			res, err = incremental.BatchResult{}, pe
		}
	}()
	if err := s.cfg.Fault.Check(FaultResolve); err != nil {
		return incremental.BatchResult{}, err
	}
	return s.resolver.Resolve(p)
}

// peekOne answers a request degraded: read-only candidates from the last
// good index via Resolver.Peek, no ID assigned. Guarded like addOne —
// even a broken index must not kill the batcher. Called with s.mu held.
func (s *Server) peekOne(p entity.Profile) (res Resolution) {
	defer func() {
		if pe := par.Recovered(recover()); pe != nil {
			s.metrics.Counter(CtrPanics).Inc()
			res = Resolution{BatchResult: incremental.BatchResult{ID: -1}, Degraded: true}
		}
	}()
	cands, err := s.resolver.Peek(p)
	if err != nil {
		s.metrics.Counter(CtrPanics).Inc()
		return Resolution{BatchResult: incremental.BatchResult{ID: -1}, Degraded: true}
	}
	return Resolution{
		BatchResult: incremental.BatchResult{ID: -1, Candidates: cands},
		Degraded:    true,
	}
}

// resumer is the optional backend capability cursor resumption needs:
// re-gather a committed profile's candidates with its own contribution
// compensated out. Both serving backends implement it; the interface is
// asserted rather than added to incremental.Index so alternative Index
// implementations (test fakes) stay valid.
type resumer interface {
	PeekExcluding(entity.Profile, entity.ID) ([]incremental.Candidate, error)
}

// resumeOne answers a resume job: a read-only exclusion gather against
// the live index. Guarded like addOne. Called with s.mu held.
func (s *Server) resumeOne(j job) (out jobResult) {
	defer func() {
		if pe := par.Recovered(recover()); pe != nil {
			s.metrics.Counter(CtrPanics).Inc()
			out = jobResult{err: pe}
		}
	}()
	r, ok := s.resolver.(resumer)
	if !ok {
		return jobResult{err: errors.New("server: backend does not support resume")}
	}
	if err := s.cfg.Fault.Check(FaultResolve); err != nil {
		return jobResult{err: err}
	}
	cands, err := r.PeekExcluding(j.profile, j.exclude)
	if err != nil {
		return jobResult{err: err}
	}
	return jobResult{res: Resolution{
		BatchResult: incremental.BatchResult{ID: j.exclude, Candidates: cands},
	}}
}
