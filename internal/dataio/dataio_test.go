package dataio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func TestCSVRoundTrip(t *testing.T) {
	want := paperexample.Collection()
	var buf bytes.Buffer
	if err := WriteProfilesCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfilesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != want.Task || got.Size() != want.Size() {
		t.Fatalf("task/size mismatch: %v/%d", got.Task, got.Size())
	}
	if !reflect.DeepEqual(got.Profiles, want.Profiles) {
		t.Fatal("profiles differ after CSV round trip")
	}
}

func TestCSVCleanCleanRoundTrip(t *testing.T) {
	var a, b entity.Profile
	a.Add("name", "x")
	b.Add("title", "y")
	want := entity.NewCleanClean([]entity.Profile{a}, []entity.Profile{b})
	var buf bytes.Buffer
	if err := WriteProfilesCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfilesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != entity.CleanClean || got.Split != 1 {
		t.Fatalf("clean-clean lost: task=%v split=%d", got.Task, got.Split)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	want := paperexample.Collection()
	var buf bytes.Buffer
	if err := WriteProfilesJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfilesJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != want.Size() || got.Task != want.Task {
		t.Fatalf("size/task mismatch")
	}
	// JSONL groups attributes by name; token sets must survive exactly.
	for i := range want.Profiles {
		w := want.Profiles[i].TokenSet()
		g := got.Profiles[i].TokenSet()
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("profile %d tokens differ: %v vs %v", i, g, w)
		}
	}
}

func TestJSONLDefaultsSourceOne(t *testing.T) {
	in := `{"id": 0, "attributes": {"name": ["a"]}}
{"id": 1, "attributes": {"name": ["b"]}}`
	c, err := ReadProfilesJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Task != entity.Dirty || c.Size() != 2 {
		t.Fatalf("got %v/%d", c.Task, c.Size())
	}
}

func TestJSONLErrors(t *testing.T) {
	for name, in := range map[string]string{
		"garbage":      "not json",
		"bad source":   `{"id":0,"source":7,"attributes":{}}`,
		"mixed source": `{"id":0,"source":1,"attributes":{}}` + "\n" + `{"id":0,"source":2,"attributes":{}}`,
		"empty":        "",
	} {
		if _, err := ReadProfilesJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"bad id":     "x,1,a,v\n",
		"bad source": "0,3,a,v\n",
		"mixed":      "0,1,a,v\n0,2,b,w\n",
		"empty":      "id,source,attribute,value\n",
		"ragged":     "0,1,a\n",
	} {
		if _, err := ReadProfilesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGroundTruthCSV(t *testing.T) {
	gt, err := ReadGroundTruthCSV(strings.NewReader("0,5\n6,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if gt.Size() != 2 || !gt.Contains(5, 0) || !gt.Contains(1, 6) {
		t.Fatalf("ground truth wrong: %v", gt.Pairs())
	}
	if _, err := ReadGroundTruthCSV(strings.NewReader("x,y\n")); err == nil {
		t.Error("bad pair accepted")
	}
}

func TestWritePairsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePairsCSV(&buf, []entity.Pair{{A: 1, B: 2}, {A: 3, B: 4}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "1,2\n3,4\n" {
		t.Fatalf("output = %q", buf.String())
	}
}
