// Package eval computes the paper's effectiveness and efficiency measures
// (§3): Pairs Completeness (recall), Pairs Quality (precision), Reduction
// Ratio, Overhead Time and Resolution Time.
package eval

import (
	"fmt"
	"time"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// Report carries the evaluation of one (restructured) block collection or
// comparison set.
type Report struct {
	// Comparisons is ‖B‖ or ‖B'‖ — the comparison cardinality, counting
	// redundant comparisons where the method retains them.
	Comparisons int64
	// Detected is |D(B)| — distinct ground-truth pairs that would be
	// found by comparing every retained pair.
	Detected int
	// Duplicates is |D(E)| — all existing ground-truth pairs.
	Duplicates int
	// Baseline is the comparison count RR is computed against (‖E‖ for
	// original blocks, ‖B‖ of the input blocks for restructured ones).
	Baseline int64
	// OTime is the overhead of producing the collection; RTime adds the
	// entity-matching cost over all retained comparisons.
	OTime, RTime time.Duration
}

// PC returns Pairs Completeness (recall): |D(B)| / |D(E)|.
func (r Report) PC() float64 {
	if r.Duplicates == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Duplicates)
}

// PQ returns Pairs Quality (precision): |D(B)| / ‖B‖.
func (r Report) PQ() float64 {
	if r.Comparisons == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Comparisons)
}

// RR returns the Reduction Ratio against the baseline cardinality:
// 1 − ‖B'‖/‖B‖.
func (r Report) RR() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return 1 - float64(r.Comparisons)/float64(r.Baseline)
}

// String renders the headline measures compactly.
func (r Report) String() string {
	return fmt.Sprintf("‖B‖=%.3g PC=%.3f PQ=%.2e RR=%.3f OTime=%v",
		float64(r.Comparisons), r.PC(), r.PQ(), r.RR(), r.OTime)
}

// EvaluateBlocks measures a block collection against the ground truth.
// baseline is the cardinality RR is computed against.
func EvaluateBlocks(c *block.Collection, gt *entity.GroundTruth, baseline int64) Report {
	return Report{
		Comparisons: c.Comparisons(),
		Detected:    c.DetectedDuplicates(gt),
		Duplicates:  gt.Size(),
		Baseline:    baseline,
	}
}

// EvaluatePairs measures a retained-comparison list (the output of
// meta-blocking pruning, Comparison Propagation or Graph-free
// Meta-blocking). Comparisons counts list entries including repeated
// pairs; Detected counts distinct ground-truth pairs.
func EvaluatePairs(pairs []entity.Pair, gt *entity.GroundTruth, baseline int64) Report {
	seen := make(map[entity.Pair]struct{})
	for _, p := range pairs {
		if gt.Contains(p.A, p.B) {
			seen[p] = struct{}{}
		}
	}
	return Report{
		Comparisons: int64(len(pairs)),
		Detected:    len(seen),
		Duplicates:  gt.Size(),
		Baseline:    baseline,
	}
}

// Similariter abstracts the matcher used to estimate Resolution Time.
type Similariter interface {
	Similarity(a, b entity.ID) float64
}

// ResolutionTime measures the wall-clock cost of applying the matcher to
// every retained comparison (RTime = OTime + matching time, §3).
func ResolutionTime(m Similariter, pairs []entity.Pair, overhead time.Duration) time.Duration {
	start := time.Now()
	var sink float64
	for _, p := range pairs {
		sink += m.Similarity(p.A, p.B)
	}
	_ = sink
	return overhead + time.Since(start)
}

// Mean averages a slice of float64 measures (used when averaging reports
// across the five weighting schemes, as the paper's tables do).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanDuration averages durations.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// MeanInt64 averages int64 counts.
func MeanInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum / int64(len(xs))
}
