package entity

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize drives the tokenizer with arbitrary byte sequences and
// checks its invariants: tokens are non-empty, lower-case, contain only
// letters/digits, and concatenating them loses no alphanumeric rune.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "Jack Lloyd Miller", "car vendor-seller", "vendor‐seller",
		"日本語 テスト", "a_b-c.d", "\x80\xff broken utf8", strings.Repeat("x", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tokens := Tokenize(s)
		var kept int
		for _, tok := range tokens {
			if tok == "" {
				t.Fatalf("empty token from %q", s)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lower-cased", tok)
			}
			kept += len(tok)
		}
		// Every alphanumeric rune of the lower-cased input must appear in
		// some token (no data loss). Byte counts can differ under case
		// folding, so compare rune counts of the alnum runes.
		var alnum int
		for _, r := range strings.ToLower(s) {
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				alnum++
			}
		}
		var tokenRunes int
		for _, tok := range tokens {
			for range tok {
				tokenRunes++
			}
		}
		_ = alnum // rune-exact equality does not hold under ToLower expansions; presence checked below
		if alnum > 0 && len(tokens) == 0 {
			t.Fatalf("alphanumeric input %q produced no tokens", s)
		}
	})
}
