package server

import (
	"context"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/shard"
)

// walConfig is disk mode with a memtable budget far above the test
// collections, so nothing checkpoints automatically: everything the
// restart recovers, it recovers from the write-ahead log.
func walConfig(dir string, shards int) Config {
	return Config{
		Resolver:         incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40},
		Shards:           shards,
		MaxBatch:         1,
		DiskDir:          dir,
		MemtableBudget:   32 << 20,
		DiskCompactAfter: 2,
	}
}

// TestServerWALSurvivesRestart is the serving-stack slice of the
// zero-loss claim: a disk server that never checkpoints still recovers
// every acknowledged resolve across a restart, purely from the WAL,
// and keeps answering bit-identically to an in-memory oracle.
func TestServerWALSurvivesRestart(t *testing.T) {
	profiles := testProfiles(t, 60)
	for _, shards := range []int{1, 4} {
		dir := filepath.Join(t.TempDir(), "index")
		cfg := walConfig(dir, shards)
		serial, err := incremental.NewResolver(cfg.Resolver)
		if err != nil {
			t.Fatal(err)
		}
		s := newTestServer(t, cfg)
		ctx := context.Background()
		for i, p := range profiles[:40] {
			want, _ := serial.Resolve(p)
			got, err := s.Resolve(ctx, p)
			if err != nil {
				t.Fatalf("shards=%d: resolve %d: %v", shards, i, err)
			}
			if !reflect.DeepEqual(got.BatchResult, want) {
				t.Fatalf("shards=%d: arrival %d diverged", shards, i)
			}
		}
		st := s.Status()
		if st.Checkpoint != 0 {
			t.Fatalf("shards=%d: unexpected checkpoint %d — the test needs a WAL-only recovery", shards, st.Checkpoint)
		}
		if st.Config.WalSync != WALSyncAlways {
			t.Fatalf("shards=%d: effective wal_sync %q, want %q", shards, st.Config.WalSync, WALSyncAlways)
		}
		if len(st.Warnings) != 0 {
			t.Fatalf("shards=%d: unexpected warnings %v at full durability", shards, st.Warnings)
		}
		var appends, syncs int64
		for _, sh := range st.Shards {
			if sh.Disk != nil {
				appends += sh.Disk.WalAppends
				syncs += sh.Disk.WalSyncs
			}
		}
		if appends != 40 {
			t.Fatalf("shards=%d: %d wal appends for 40 commits", shards, appends)
		}
		if syncs == 0 {
			t.Fatalf("shards=%d: no group-commit syncs under wal_sync=always", shards)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		s2 := newTestServer(t, cfg)
		if s2.Size() != 40 {
			t.Fatalf("shards=%d: restart recovered %d profiles, want 40 — acknowledged writes lost", shards, s2.Size())
		}
		for i, p := range profiles[40:] {
			want, _ := serial.Resolve(p)
			got, err := s2.Resolve(ctx, p)
			if err != nil {
				t.Fatalf("shards=%d: post-restart resolve %d: %v", shards, i, err)
			}
			if !reflect.DeepEqual(got.BatchResult, want) {
				t.Fatalf("shards=%d: post-restart arrival %d diverged", shards, i)
			}
		}
		if !reflect.DeepEqual(s2.Snapshot(), serial.Snapshot()) {
			t.Fatalf("shards=%d: canonical snapshot diverged after WAL-only restart", shards)
		}
	}
}

// TestServerWALDisabled pins the opt-out: without the log the restart
// rolls back to the last checkpoint (here: empty), and the status
// endpoint warns about the traded-away durability.
func TestServerWALDisabled(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "index")
	cfg := walConfig(dir, 2)
	cfg.WALDisabled = true
	s := newTestServer(t, cfg)
	ctx := context.Background()
	for _, p := range testProfiles(t, 20) {
		if _, err := s.Resolve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status()
	if !st.Config.WalDisabled {
		t.Fatal("status does not report wal_disabled")
	}
	found := slices.IndexFunc(st.Warnings, func(w string) bool { return strings.HasPrefix(w, "wal_disabled") }) >= 0
	if !found {
		t.Fatalf("status warnings %v lack the wal_disabled warning", st.Warnings)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, cfg)
	if s2.Size() != 0 {
		t.Fatalf("wal-disabled restart recovered %d profiles, want rollback to the empty checkpoint", s2.Size())
	}
}

// TestServerWALSyncOffWarns pins the middle policy surface: wal_sync=off
// is accepted, reported, and flagged; an unknown policy is refused.
func TestServerWALSyncOffWarns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "index")
	cfg := walConfig(dir, 1)
	cfg.WALSync = WALSyncOff
	s := newTestServer(t, cfg)
	st := s.Status()
	if st.Config.WalSync != WALSyncOff {
		t.Fatalf("effective wal_sync %q, want off", st.Config.WalSync)
	}
	if len(st.Warnings) == 0 || !strings.HasPrefix(st.Warnings[0], "wal_sync=off") {
		t.Fatalf("status warnings %v lack the wal_sync=off warning", st.Warnings)
	}
	s.Close()

	bad := walConfig(filepath.Join(t.TempDir(), "index2"), 1)
	bad.WALSync = "sometimes"
	if _, err := New(bad); err == nil {
		t.Fatal("server accepted an unknown wal sync policy")
	}
}

// TestServerWALSyncFaultFailsResolve pins the group-commit contract
// under wal_sync=always: when the sync barrier fails, the batch's
// resolves are answered with errors — never acknowledged as durable —
// and the server keeps serving once the fault drains (at-least-once:
// the failed attempt's commit stands).
func TestServerWALSyncFaultFailsResolve(t *testing.T) {
	profiles := testProfiles(t, 10)
	dir := filepath.Join(t.TempDir(), "index")
	cfg := walConfig(dir, 1)
	inj := fault.New(1)
	s := newTestServer(t, cfg, WithFault(inj))
	ctx := context.Background()
	for _, p := range profiles[:5] {
		if _, err := s.Resolve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	inj.Arm(shard.WalSyncSite(0), fault.Spec{Times: 1})
	if _, err := s.Resolve(ctx, profiles[5]); err == nil {
		t.Fatal("resolve acknowledged despite a failed group-commit sync")
	} else if !strings.Contains(err.Error(), "wal sync") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := s.Metrics().Counter(CtrWalSyncFailed).Value(); got != 1 {
		t.Fatalf("wal_sync_failures counter = %d, want 1", got)
	}
	// The fault drained; the commit stood (ID consumed) and serving resumes.
	res, err := s.Resolve(ctx, profiles[6])
	if err != nil {
		t.Fatalf("resolve after drained fault: %v", err)
	}
	if res.ID != 6 {
		t.Fatalf("post-fault resolve got ID %d, want 6 (the failed barrier's commit stands)", res.ID)
	}
}
