// Package par holds the small shared machinery of the parallel pipeline:
// worker-count resolution, deterministic range fan-out, and panic
// isolation. Every parallel stage (blocking, filtering, Entity Index
// construction, graph traversal) partitions its input into one contiguous
// range per worker, so results can be merged back in worker order without
// any cross-worker coordination.
//
// A panic inside a worker goroutine would normally kill the whole process
// — there is no recovering another goroutine's panic. Ranges and Do
// therefore recover inside each worker, let every other worker drain, and
// re-panic the first captured panic as a *PanicError (stack attached) on
// the calling goroutine, where a top-level recover (Pipeline.RunContext,
// the server's flush loop) can turn it into an ordinary error.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into an error: the recovered
// value plus the stack of the panicking goroutine. It crosses goroutine
// boundaries via re-panic on the caller, and API boundaries as an error
// (errors.As(&pe)).
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic: %v", e.Value)
}

// Recovered normalizes a recover() result into a *PanicError, capturing
// the current stack unless r already is one. It returns nil for a nil r,
// so it can be called unconditionally in a deferred recover block.
func Recovered(r any) *PanicError {
	if r == nil {
		return nil
	}
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// guard runs fn, converting a panic into the returned *PanicError.
func guard(fn func()) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = Recovered(r)
		}
	}()
	fn()
	return nil
}

// Resolve maps a Workers knob to a concrete worker count for an input of
// size n, using the convention of core.Config.Workers: 0 or 1 keeps the
// serial path, negative uses GOMAXPROCS, positive uses that many workers.
// The result is clamped to [1, n] (with a minimum of 1 for empty inputs).
func Resolve(workers, n int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Ranges splits [0, n) into one contiguous chunk per worker and runs
// fn(worker, lo, hi) concurrently. workers must already be resolved
// (≥ 1); workers == 1 runs fn inline with the full range. Trailing workers
// whose chunk is empty are not started, so fn may index per-worker result
// buckets with its worker argument directly.
//
// A panic inside fn does not kill the process: every other worker drains,
// then the first captured panic is re-raised on the calling goroutine as a
// *PanicError carrying the worker's stack.
func Ranges(workers, n int, fn func(worker, lo, hi int)) {
	if workers <= 1 || n == 0 {
		if pe := guard(func() { fn(0, 0, n) }); pe != nil {
			panic(pe)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var (
		wg    sync.WaitGroup
		first atomic.Pointer[PanicError]
	)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			if pe := guard(func() { fn(worker, lo, hi) }); pe != nil {
				first.CompareAndSwap(nil, pe)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if pe := first.Load(); pe != nil {
		panic(pe)
	}
}

// Do runs the given thunks concurrently and waits for all of them — the
// fork/join used for independent pipeline phases (e.g. sorting per-worker
// result buckets). Panics are isolated the same way as in Ranges: all
// thunks drain, then the first panic re-raises as a *PanicError on the
// caller.
func Do(fns ...func()) {
	if len(fns) == 1 {
		if pe := guard(fns[0]); pe != nil {
			panic(pe)
		}
		return
	}
	var (
		wg    sync.WaitGroup
		first atomic.Pointer[PanicError]
	)
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			if pe := guard(f); pe != nil {
				first.CompareAndSwap(nil, pe)
			}
		}(fn)
	}
	wg.Wait()
	if pe := first.Load(); pe != nil {
		panic(pe)
	}
}
