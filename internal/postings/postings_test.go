package postings

import (
	"math/rand"
	"slices"
	"testing"
)

// randAscending builds a strictly ascending list of n values drawn from
// [0, span) using rng.
func randAscending(rng *rand.Rand, n, span int) []int32 {
	if n > span {
		n = span
	}
	seen := make(map[int32]struct{}, n)
	out := make([]int32, 0, n)
	for len(out) < n {
		v := int32(rng.Intn(span))
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

func TestRoundTripForms(t *testing.T) {
	cases := [][]int32{
		nil,
		{},
		{0},
		{5},
		{0, 1, 2, 3, 4, 5, 6, 7},            // dense from zero → bitmap
		{100, 101, 102, 103, 104, 105, 106}, // dense with anchor → bitmap
		{0, 1000000},                        // sparse extremes → varint
		{7, 63, 64, 65, 127, 128, 129, 1 << 20},
		{2147483600, 2147483640, 2147483647}, // near int32 max
	}
	for _, ids := range cases {
		enc, form := Append(nil, ids)
		got := AppendDecoded(nil, form, enc, len(ids))
		if len(ids) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty list decoded to %v", got)
			}
			continue
		}
		if !slices.Equal(got, ids) {
			t.Fatalf("round trip form=%d: got %v want %v", form, got, ids)
		}
	}
}

func TestFormSelection(t *testing.T) {
	dense := make([]int32, 512)
	for i := range dense {
		dense[i] = int32(i)
	}
	if _, form := Append(nil, dense); form != Bitmap {
		t.Fatalf("dense run should pick bitmap, got %d", form)
	}
	sparse := []int32{0, 1 << 10, 1 << 20, 1 << 29}
	if _, form := Append(nil, sparse); form != Varint {
		t.Fatalf("sparse list should pick varint, got %d", form)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		span := 1 + rng.Intn(4000)
		ids := randAscending(rng, n, span)
		enc, form := Append(nil, ids)
		got := AppendDecoded(nil, form, enc, len(ids))
		if !slices.Equal(got, ids) && !(len(got) == 0 && len(ids) == 0) {
			t.Fatalf("trial %d form=%d: got %v want %v", trial, form, got, ids)
		}
	}
}

func TestPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lists := make([][]int32, 100)
	for i := range lists {
		switch i % 4 {
		case 0:
			lists[i] = nil
		case 1:
			lists[i] = randAscending(rng, 1+rng.Intn(5), 10000) // sparse
		default:
			base := int32(rng.Intn(1000))
			n := 1 + rng.Intn(300)
			run := make([]int32, n)
			for j := range run {
				run[j] = base + int32(j) // dense
			}
			lists[i] = run
		}
	}
	p := Pack(lists)
	if p.Lists() != len(lists) {
		t.Fatalf("Lists() = %d, want %d", p.Lists(), len(lists))
	}
	var scratch []int32
	for i, want := range lists {
		if p.Count(i) != len(want) {
			t.Fatalf("Count(%d) = %d, want %d", i, p.Count(i), len(want))
		}
		scratch = p.AppendList(scratch[:0], i)
		if !slices.Equal(scratch, want) && !(len(scratch) == 0 && len(want) == 0) {
			t.Fatalf("list %d: got %v want %v", i, scratch, want)
		}
	}
	if p.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func TestPackedDecodeAllocFree(t *testing.T) {
	lists := [][]int32{{1, 2, 3, 900}, {5, 6, 7, 8, 9, 10}, {42}}
	p := Pack(lists)
	scratch := make([]int32, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < p.Lists(); i++ {
			scratch = p.AppendList(scratch[:0], i)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode into scratch allocated %v times per run", allocs)
	}
}

func TestBuilder(t *testing.T) {
	var b Builder
	if b.Len() != 0 || b.Last() != -1 {
		t.Fatal("zero Builder should be empty")
	}
	ids := []int32{0, 1, 7, 8, 9, 1000, 1 << 20}
	for _, id := range ids {
		b.Append(id)
	}
	if b.Len() != len(ids) || b.Last() != ids[len(ids)-1] {
		t.Fatalf("Len/Last = %d/%d", b.Len(), b.Last())
	}
	if got := b.AppendTo(nil); !slices.Equal(got, ids) {
		t.Fatalf("AppendTo = %v, want %v", got, ids)
	}
	c := b.Clone()
	c.Append(1 << 21)
	if b.Len() != len(ids) {
		t.Fatal("Clone must not share state")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-ascending Append should panic")
			}
		}()
		b.Append(5)
	}()
}

func TestAdvance(t *testing.T) {
	xs := []int32{2, 4, 8, 16, 32, 64, 128}
	for lo := 0; lo <= len(xs); lo++ {
		for v := int32(0); v <= 130; v++ {
			got := advance(xs, lo, v)
			want := lo
			for want < len(xs) && xs[want] < v {
				want++
			}
			if got != want {
				t.Fatalf("advance(lo=%d, v=%d) = %d, want %d", lo, v, got, want)
			}
		}
	}
}

// naiveIntersect is the reference for all intersection variants.
func naiveIntersect(a, b []int32) []int32 {
	in := make(map[int32]struct{}, len(a))
	for _, v := range a {
		in[v] = struct{}{}
	}
	var out []int32
	for _, v := range b {
		if _, ok := in[v]; ok {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

func TestIntersectionsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		// Mix skewed and balanced shapes so both regimes run.
		na, nb := rng.Intn(40), rng.Intn(40)
		if trial%3 == 0 {
			nb = rng.Intn(2000) // force galloping
		}
		span := 1 + rng.Intn(3000)
		a := randAscending(rng, na, span)
		b := randAscending(rng, nb, span)
		want := naiveIntersect(a, b)

		if got := IntersectCount(a, b); got != len(want) {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, got, len(want))
		}
		wantFirst := int32(-1)
		if len(want) > 0 {
			wantFirst = want[0]
		}
		if got := First(a, b); got != wantFirst {
			t.Fatalf("trial %d: First = %d, want %d", trial, got, wantFirst)
		}
		var seen []int32
		ForEachCommon(a, b, func(v int32) { seen = append(seen, v) })
		if !slices.Equal(seen, want) && !(len(seen) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: ForEachCommon = %v, want %v", trial, seen, want)
		}
		for _, min := range []int{0, 1, 2, len(want), len(want) + 1} {
			got := IntersectCountMin(a, b, min)
			if len(want) >= min {
				if got != len(want) {
					t.Fatalf("trial %d: IntersectCountMin(min=%d) = %d, want %d", trial, min, got, len(want))
				}
			} else if got != -1 {
				t.Fatalf("trial %d: IntersectCountMin(min=%d) = %d, want -1", trial, min, got)
			}
		}
	}
}

func TestPackedFormAndBuilderSize(t *testing.T) {
	// A short sparse list encodes as varint; a long dense run crosses the
	// size break-even and encodes as a bitmap.
	sparse := []int32{3, 900, 40000}
	dense := make([]int32, 300)
	for i := range dense {
		dense[i] = int32(i)
	}
	p := Pack([][]int32{sparse, dense})
	if got := p.Form(0); got != Varint {
		t.Errorf("sparse list Form = %v, want Varint", got)
	}
	if got := p.Form(1); got != Bitmap {
		t.Errorf("dense list Form = %v, want Bitmap", got)
	}

	var b Builder
	if b.SizeBytes() != 0 {
		t.Errorf("empty Builder SizeBytes = %d, want 0", b.SizeBytes())
	}
	for _, id := range sparse {
		b.Append(id)
	}
	if got := b.SizeBytes(); got <= 0 || got >= 4*len(sparse) {
		t.Errorf("Builder SizeBytes = %d, want in (0, %d)", got, 4*len(sparse))
	}
}
