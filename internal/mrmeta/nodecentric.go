package mrmeta

import (
	"sort"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/floatsum"
	"metablocking/internal/mapreduce"
)

// Node-centric pruning as MapReduce: the "entity-based strategy" of the
// parallel meta-blocking literature. One job groups each node's incident
// weighted edges (reusing the edge-weighting job's output as map input)
// and emits the locally retained directed edges; a second aggregation
// resolves the Redefined (OR) or Reciprocal (AND) semantics per pair.

// directedMark is one node's vote for a pair: bit 1 when the smaller
// endpoint retained it, bit 2 when the larger one did.
type directedMark struct {
	pair entity.Pair
	bit  uint8
}

// nodeCentric runs WNP- or CNP-style local pruning over the weighted
// edges and combines the directed votes.
func (j *Job) nodeCentric(cardinality bool, reciprocal bool) []entity.Pair {
	edges := j.WeightedEdges()

	// Job: group by node — every edge is input to both endpoints'
	// neighborhoods.
	type adj struct {
		other  entity.ID
		weight float64
	}
	k := 0
	if cardinality {
		k = int(j.blocks.Assignments())/j.blocks.NumEntities - 1
		if k < 1 {
			k = 1
		}
	}
	marks := mapreduce.Run(edges,
		func(e WeightedEdge, emit func(entity.ID, adj)) {
			emit(e.Pair.A, adj{other: e.Pair.B, weight: e.Weight})
			emit(e.Pair.B, adj{other: e.Pair.A, weight: e.Weight})
		},
		func(node entity.ID, neighborhood []adj, emit func(directedMark)) {
			var retained []adj
			if cardinality {
				// Top-k by (weight, canonical pair) — the same total
				// order as the sequential heap.
				sort.Slice(neighborhood, func(a, b int) bool {
					na, nb := neighborhood[a], neighborhood[b]
					if na.weight != nb.weight {
						return na.weight > nb.weight
					}
					pa := entity.MakePair(node, na.other)
					pb := entity.MakePair(node, nb.other)
					if pa.A != pb.A {
						return pa.A < pb.A
					}
					return pa.B < pb.B
				})
				if len(neighborhood) > k {
					retained = neighborhood[:k]
				} else {
					retained = neighborhood
				}
			} else {
				// Exact mean, matching core's: values arrive in shuffle
				// order, and float addition is not associative, so the
				// fold must be order-independent.
				var acc floatsum.Acc
				for _, a := range neighborhood {
					acc.Add(a.weight)
				}
				mean := acc.Mean()
				for _, a := range neighborhood {
					if a.weight >= mean {
						retained = append(retained, a)
					}
				}
			}
			for _, a := range retained {
				p := entity.MakePair(node, a.other)
				bit := uint8(1)
				if node > a.other {
					bit = 2
				}
				emit(directedMark{pair: p, bit: bit})
			}
		},
		j.cfg)

	// Aggregate votes per pair (OR → any bit, AND → both bits).
	votes := make(map[entity.Pair]uint8, len(marks))
	for _, m := range marks {
		votes[m.pair] |= m.bit
	}
	var out []entity.Pair
	for p, bits := range votes {
		if reciprocal && bits != 3 {
			continue
		}
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// RedefinedWNP runs Weighted Node Pruning with OR semantics (Alg. 5).
func (j *Job) RedefinedWNP() []entity.Pair { return j.nodeCentric(false, false) }

// ReciprocalWNP runs Weighted Node Pruning with AND semantics (§5.2).
func (j *Job) ReciprocalWNP() []entity.Pair { return j.nodeCentric(false, true) }

// RedefinedCNP runs Cardinality Node Pruning with OR semantics (Alg. 4).
func (j *Job) RedefinedCNP() []entity.Pair { return j.nodeCentric(true, false) }

// ReciprocalCNP runs Cardinality Node Pruning with AND semantics (§5.2).
func (j *Job) ReciprocalCNP() []entity.Pair { return j.nodeCentric(true, true) }

// Prune dispatches a subset of core's algorithms to their MapReduce
// formulations.
func (j *Job) Prune(a core.Algorithm) []entity.Pair {
	switch a {
	case core.WEP:
		return j.WEP()
	case core.CEP:
		return j.CEP()
	case core.RedefinedWNP:
		return j.RedefinedWNP()
	case core.ReciprocalWNP:
		return j.ReciprocalWNP()
	case core.RedefinedCNP:
		return j.RedefinedCNP()
	case core.ReciprocalCNP:
		return j.ReciprocalCNP()
	default:
		panic("mrmeta: algorithm has no MapReduce formulation: " + a.String())
	}
}
