package matching

import (
	"math"
	"sort"

	"metablocking/internal/entity"
)

// CosineMatcher compares profiles by the cosine similarity of their
// token-frequency vectors. Unlike Jaccard it rewards repeated tokens, which
// suits verbose sources (the paper's D2 DBpedia side). Safe for concurrent
// use after construction.
type CosineMatcher struct {
	// Threshold is the minimum similarity for a match.
	Threshold float64
	vectors   []tokenVector
}

// tokenVector is a sparse, sorted term-frequency vector with its norm.
type tokenVector struct {
	tokens []string
	counts []float64
	norm   float64
}

// NewCosineMatcher precomputes the token-frequency vectors of every
// profile.
func NewCosineMatcher(c *entity.Collection, threshold float64) *CosineMatcher {
	m := &CosineMatcher{Threshold: threshold, vectors: make([]tokenVector, c.Size())}
	for i := range c.Profiles {
		freq := make(map[string]float64)
		for _, tok := range c.Profiles[i].Tokens() {
			freq[tok]++
		}
		v := tokenVector{
			tokens: make([]string, 0, len(freq)),
			counts: make([]float64, 0, len(freq)),
		}
		for tok := range freq {
			v.tokens = append(v.tokens, tok)
		}
		sort.Strings(v.tokens)
		var norm float64
		for _, tok := range v.tokens {
			n := freq[tok]
			v.counts = append(v.counts, n)
			norm += n * n
		}
		v.norm = math.Sqrt(norm)
		m.vectors[i] = v
	}
	return m
}

// Similarity returns the cosine of the two profiles' term-frequency
// vectors in [0, 1].
func (m *CosineMatcher) Similarity(a, b entity.ID) float64 {
	va, vb := &m.vectors[a], &m.vectors[b]
	if va.norm == 0 || vb.norm == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(va.tokens) && j < len(vb.tokens) {
		switch {
		case va.tokens[i] < vb.tokens[j]:
			i++
		case va.tokens[i] > vb.tokens[j]:
			j++
		default:
			dot += va.counts[i] * vb.counts[j]
			i++
			j++
		}
	}
	return dot / (va.norm * vb.norm)
}

// Match implements blockproc.Matcher.
func (m *CosineMatcher) Match(a, b entity.ID) bool {
	return m.Similarity(a, b) >= m.Threshold
}

// OverlapMatcher compares profiles by the overlap coefficient of their
// token sets: |A∩B| / min(|A|, |B|). It is forgiving when one profile is
// far more verbose than the other — the record-linkage asymmetry of the
// paper's D2 benchmark.
type OverlapMatcher struct {
	// Threshold is the minimum similarity for a match.
	Threshold float64
	jm        *JaccardMatcher
}

// NewOverlapMatcher precomputes token sets via the Jaccard matcher's
// representation.
func NewOverlapMatcher(c *entity.Collection, threshold float64) *OverlapMatcher {
	return &OverlapMatcher{Threshold: threshold, jm: NewJaccardMatcher(c, 0)}
}

// Similarity returns the overlap coefficient of the token sets.
func (m *OverlapMatcher) Similarity(a, b entity.ID) float64 {
	ta, tb := m.jm.tokens[a], m.jm.tokens[b]
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	common, i, j := 0, 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] < tb[j]:
			i++
		case ta[i] > tb[j]:
			j++
		default:
			common++
			i++
			j++
		}
	}
	min := len(ta)
	if len(tb) < min {
		min = len(tb)
	}
	return float64(common) / float64(min)
}

// Match implements blockproc.Matcher.
func (m *OverlapMatcher) Match(a, b entity.ID) bool {
	return m.Similarity(a, b) >= m.Threshold
}
