package server

import (
	"context"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/incremental"
)

// TestResolveBatchPassAllocBudget pins the steady-state allocation budget
// of one admitted request through the whole batch pass: pooled reply
// channel, reused batch/outcome buffers, the resolver's reused token and
// ScanCount scratch, and the compressed posting-list appends. What remains
// is the per-request output (the candidate slice and the retained keys
// and profile bookkeeping) plus amortized index growth.
func TestResolveBatchPassAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated under the race detector")
	}
	profiles := testProfiles(t, 600)
	s, err := New(Config{
		Resolver: incremental.Config{Scheme: core.JS, K: 10},
		MaxBatch: 1, // no batch timer: the pass itself is what's measured
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	for _, p := range profiles[:500] { // warm every pool and scratch buffer
		if _, err := s.Resolve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	i := 500
	avg := testing.AllocsPerRun(80, func() {
		if _, err := s.Resolve(ctx, profiles[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The pre-pooling baseline sat around 26 allocs per request; the
	// budget leaves headroom for output-size variance while catching any
	// reintroduced per-request channel, batch-buffer or scratch churn.
	const budget = 20
	if avg > budget {
		t.Errorf("resolve batch pass allocated %.1f times per request, budget %d", avg, budget)
	}
}
