package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if err := in.Check("any"); err != nil {
		t.Fatalf("nil injector Check = %v", err)
	}
	in.Arm("any", Spec{Err: ErrInjected})
	in.Disarm("any")
	if in.Hits("any") != 0 || in.Fired("any") != 0 {
		t.Fatal("nil injector counted")
	}
	var buf bytes.Buffer
	w := in.Writer("any", &buf)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("nil injector writer = %d, %v", n, err)
	}
}

func TestCheckErrorAndBudget(t *testing.T) {
	in := New(1)
	in.Arm("s", Spec{After: 1, Times: 2})
	var fired int
	for i := 0; i < 5; i++ {
		if err := in.Check("s"); err != nil {
			fired++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			if !strings.Contains(err.Error(), "site s") {
				t.Fatalf("error %v does not name the site", err)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (after=1, times=2)", fired)
	}
	if in.Hits("s") != 5 || in.Fired("s") != 2 {
		t.Fatalf("hits/fired = %d/%d, want 5/2", in.Hits("s"), in.Fired("s"))
	}
	if err := in.Check("unarmed"); err != nil {
		t.Fatalf("unarmed site = %v", err)
	}
}

func TestCheckCustomError(t *testing.T) {
	custom := errors.New("boom")
	in := New(1)
	in.Arm("s", Spec{Err: custom})
	if err := in.Check("s"); !errors.Is(err, custom) {
		t.Fatalf("error = %v, want wrapped custom", err)
	}
}

func TestCheckPanics(t *testing.T) {
	in := New(1)
	in.Arm("p", Spec{Panic: true, Times: 1})
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok || p.Site != "p" {
			t.Fatalf("recovered %v, want fault.Panic at site p", r)
		}
		// The budget is spent: the site stays quiet now.
		if err := in.Check("p"); err != nil {
			t.Fatalf("after budget: %v", err)
		}
	}()
	in.Check("p")
	t.Fatal("no panic")
}

func TestCheckDelay(t *testing.T) {
	in := New(1)
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept += d }
	in.Arm("d", Spec{Delay: 50 * time.Millisecond}) // delay only: no error
	if err := in.Check("d"); err != nil {
		t.Fatalf("delay-only site returned %v", err)
	}
	if slept != 50*time.Millisecond {
		t.Fatalf("slept %v, want 50ms", slept)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	outcomes := func(seed int64) []bool {
		in := New(seed)
		in.Arm("s", Spec{Prob: 0.5})
		out := make([]bool, 40)
		for i := range out {
			out[i] = in.Check("s") != nil
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fire sequences")
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d", fired, len(a))
	}
}

func TestShortWriter(t *testing.T) {
	in := New(1)
	in.Arm("w", Spec{ShortWrite: 3, After: 1, Times: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	if n, err := w.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	n, err := w.Write([]byte("world"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %d, %v; want 3 bytes and ErrInjected", n, err)
	}
	if buf.String() != "hellowor" {
		t.Fatalf("buffer = %q", buf.String())
	}
	if n, err := w.Write([]byte("!")); n != 1 || err != nil {
		t.Fatalf("post-budget write = %d, %v", n, err)
	}
}

func TestParseSpec(t *testing.T) {
	name, spec, err := ParseSpec("store.save.sync:delay=2s,times=1")
	if err != nil || name != "store.save.sync" || spec.Delay != 2*time.Second || spec.Times != 1 {
		t.Fatalf("parsed %q %+v, %v", name, spec, err)
	}
	name, spec, err = ParseSpec("server.resolve:panic,after=3")
	if err != nil || name != "server.resolve" || !spec.Panic || spec.After != 3 {
		t.Fatalf("parsed %q %+v, %v", name, spec, err)
	}
	name, spec, err = ParseSpec("bare.site")
	if err != nil || name != "bare.site" || spec.Err == nil {
		t.Fatalf("bare site parsed %q %+v, %v", name, spec, err)
	}
	if _, spec, err = ParseSpec("w:short=4"); err != nil || spec.ShortWrite != 4 || spec.Err == nil {
		t.Fatalf("short spec %+v, %v", spec, err)
	}
	for _, bad := range []string{"", ":panic", "s:delay", "s:delay=x", "s:times=x", "s:nope", "s:prob=x", "s:short=x", "s:after=x"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
