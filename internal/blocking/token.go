package blocking

import (
	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// TokenBlocking is the paper's primary blocking method (§1, §6.2): it
// splits every attribute value into whitespace tokens and creates a block
// for every distinct token shared by at least two profiles (one from each
// source for Clean-Clean ER). It is schema-agnostic and redundancy-positive.
type TokenBlocking struct {
	// MinTokenLength drops tokens shorter than this many bytes; 0 keeps
	// all tokens.
	MinTokenLength int
}

// Name implements Method.
func (TokenBlocking) Name() string { return "Token Blocking" }

// Build implements Method.
func (t TokenBlocking) Build(c *entity.Collection) *block.Collection {
	idx := newKeyIndex(c)
	forEachProfileKeys(c, func(p *entity.Profile, emit func(string)) {
		for _, a := range p.Attributes {
			for _, tok := range entity.Tokenize(a.Value) {
				if len(tok) >= t.MinTokenLength {
					emit(tok)
				}
			}
		}
	}, func(id entity.ID, keys []string) {
		for _, k := range keys {
			idx.add(k, id)
		}
	})
	return idx.build(c)
}
